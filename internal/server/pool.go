package server

import (
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/obs"
)

// task is one queued unit of pool work: one stream's planned group of
// pictures, stamped with the scheduling facts dispatch needs.
type task struct {
	st *stream
	t  *core.SessionTask

	enq      time.Time     // enqueue time (aging, virtual deadlines)
	deadline time.Time     // absolute frame deadline; zero for best-effort
	cost     time.Duration // predicted decode cost (0 = model uncalibrated)
	tight    bool          // slack-tight at feed: assist candidate
}

// worker is one shared-pool goroutine: pick the next runnable task
// under the active dispatch order, execute it through the owning
// stream's session, repeat. Workers exit only when the server is closed
// and every stream has unregistered — a closing server still needs them
// to drain aborted streams' queues (Session.Run returns a latched error
// without decoding, so the drain is fast).
func (s *Server) worker(wi int) {
	defer s.wg.Done()
	obs.Do("service", wi, func() {
		for {
			s.mu.Lock()
			tk := s.pickLocked()
			for tk == nil {
				if s.closed && len(s.streams) == 0 {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				tk = s.pickLocked()
			}
			tk.st.inFlight++
			s.busy++
			s.grantAssistLocked(tk)
			s.mu.Unlock()

			err := tk.st.sess.Run(tk.t, wi)
			tk.st.complete(tk.t, err)
		}
	})
}

// grantAssistLocked decides, at the moment a slack-tight task is picked,
// whether it may fan its indexed slices out across otherwise-idle
// workers. Strictly opportunistic: assist is granted only when the rest
// of the queue is empty and workers are idle, so the fan-out goroutines
// spend capacity nothing else wants — it can never slow another stream
// down, only pull this one's tight frame back under its deadline.
func (s *Server) grantAssistLocked(tk *task) {
	if !tk.tight || s.cfg.DisableSlackActions {
		return
	}
	idle := s.cfg.Workers - s.busy
	if idle <= 0 || s.backlog > 0 {
		return
	}
	n := idle + 1
	if n > maxAssistParts {
		n = maxAssistParts
	}
	tk.t.SetAssist(n)
	s.assists.Add(1)
}

// maxAssistParts caps the split fan-out width: beyond a handful of
// segments per slice the verify chain's coordination outweighs the
// latency won.
const maxAssistParts = 8

// pickLocked returns the next task under the active dispatch order:
// earliest-effective-deadline-first while any admitted stream carries a
// deadline (see pickEDFLocked), the legacy weighted fair order
// otherwise.
func (s *Server) pickLocked() *task {
	if s.edfActiveLocked() {
		return s.pickEDFLocked(time.Now())
	}
	return s.pickFairLocked()
}

// pickFairLocked implements the pool's weighted fair dispatch: among
// streams with queued tasks, run the one with the least service per
// unit weight (weight = priority+1), ties to the lowest id. The
// minimum always eventually runs, so no admitted stream starves, and
// within a priority class service rates equalize — the fairness bound
// the load tests assert. Paused streams are skipped unless they have
// already failed (their queues must still drain for teardown).
func (s *Server) pickFairLocked() *task {
	var best *stream
	var bestKey float64
	for _, st := range s.streams {
		if len(st.pending) == 0 {
			continue
		}
		if st.paused && st.sess.Err() == nil {
			continue
		}
		key := st.served / st.weight
		if best == nil || key < bestKey || (key == bestKey && st.id < best.id) {
			best, bestKey = st, key
		}
	}
	if best == nil {
		return nil
	}
	return s.takeLocked(best)
}

// enqueue queues one stamped task for the pool.
func (s *Server) enqueue(tk *task) {
	s.mu.Lock()
	tk.st.pending = append(tk.st.pending, tk)
	s.backlog++
	s.pendingCost += tk.cost
	s.mu.Unlock()
	tk.st.touch()
	s.cond.Broadcast()
}
