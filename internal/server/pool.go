package server

import (
	"mpeg2par/internal/core"
	"mpeg2par/internal/obs"
)

// task is one queued unit of pool work: one stream's planned group of
// pictures.
type task struct {
	st *stream
	t  *core.SessionTask
}

// worker is one shared-pool goroutine: pick the fairest runnable task,
// execute it through the owning stream's session, repeat. Workers exit
// only when the server is closed and every stream has unregistered —
// a closing server still needs them to drain aborted streams' queues
// (Session.Run returns a latched error without decoding, so the drain
// is fast).
func (s *Server) worker(wi int) {
	defer s.wg.Done()
	obs.Do("service", wi, func() {
		for {
			s.mu.Lock()
			tk := s.pickLocked()
			for tk == nil {
				if s.closed && len(s.streams) == 0 {
					s.mu.Unlock()
					return
				}
				s.cond.Wait()
				tk = s.pickLocked()
			}
			tk.st.inFlight++
			s.mu.Unlock()

			err := tk.st.sess.Run(tk.t, wi)
			tk.st.complete(tk.t, err)
		}
	})
}

// pickLocked implements the pool's weighted fair dispatch: among
// streams with queued tasks, run the one with the least service per
// unit weight (weight = priority+1), ties to the lowest id. The
// minimum always eventually runs, so no admitted stream starves, and
// within a priority class service rates equalize — the fairness bound
// the load tests assert. Paused streams are skipped unless they have
// already failed (their queues must still drain for teardown).
func (s *Server) pickLocked() *task {
	var best *stream
	var bestKey float64
	for _, st := range s.streams {
		if len(st.pending) == 0 {
			continue
		}
		if st.paused && st.sess.Err() == nil {
			continue
		}
		key := st.served / st.weight
		if best == nil || key < bestKey || (key == bestKey && st.id < best.id) {
			best, bestKey = st, key
		}
	}
	if best == nil {
		return nil
	}
	tk := best.pending[0]
	best.pending = best.pending[1:]
	s.backlog--
	return tk
}

// enqueue queues one planned task for the pool.
func (s *Server) enqueue(st *stream, t *core.SessionTask) {
	s.mu.Lock()
	st.pending = append(st.pending, &task{st: st, t: t})
	s.backlog++
	s.mu.Unlock()
	st.touch()
	s.cond.Broadcast()
}
