// Package server multiplexes many concurrent MPEG-2 decode streams onto
// one shared worker pool — the paper's single-film decoder turned into a
// video-server building block. Three mechanisms keep it well-behaved
// under load:
//
//   - Admission control: a stream is admitted only while the pool's
//     estimated utilization (Σ per-stream demand, phrased through the
//     calibrated cost model) stays under capacity; excess arrivals wait
//     in a bounded FIFO queue or are rejected outright.
//
//   - Per-stream budgets: each stream has a scan-ahead token gate
//     (MaxInFlight), an optional frame deadline, and a priority weight
//     that the pool's weighted fair dispatch honors.
//
//   - Graceful degradation: a rung ladder driven by observed backlog and
//     deadline misses sheds B pictures, then P pictures plus a
//     resilience floor, then pauses the lowest-priority class with
//     bounded backoff — and only at the top rung rejects new work. An
//     admitted stream is never starved: pauses expire on their own and
//     a watchdog fails (rather than wedges) a stream that stops moving.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpeg2par/internal/obs"
	"mpeg2par/internal/sched"
)

// Service errors. Decode reports them wrapped with the stream id.
var (
	// ErrRejected means admission control turned the stream away: the
	// queue was full, or the overload ladder had reached its top rung.
	ErrRejected = errors.New("server: stream rejected by admission control")
	// ErrWedged means the watchdog found the stream making no progress
	// for the configured window and failed it rather than let it hold
	// tokens and queue slots forever.
	ErrWedged = errors.New("server: stream made no progress (watchdog)")
	// ErrServerClosed means the server was shut down.
	ErrServerClosed = errors.New("server: server closed")
)

// Config tunes a Server. The zero value of every field selects a
// sensible default (see each field); NewServer normalizes a copy.
type Config struct {
	// Workers is the shared pool size. Default: runtime.NumCPU().
	Workers int
	// MaxStreams caps concurrently admitted streams. Default: 8×Workers.
	MaxStreams int
	// QueueDepth bounds the admission wait queue. Default: 2×Workers.
	QueueDepth int
	// TargetUtilization scales pool capacity for admission: admit while
	// Σ demand ≤ Workers × TargetUtilization. Default 1.0.
	TargetUtilization float64
	// DefaultDemand is the worker-fraction charged for a stream whose
	// cost cannot be predicted yet (unpaced, or cost model cold).
	// Default 0.5.
	DefaultDemand float64
	// Watchdog fails a stream with queued or running work that makes no
	// progress for this long. Default 30s; negative disables.
	Watchdog time.Duration
	// Tick is the overload monitor's period. Default 25ms.
	Tick time.Duration
	// HighWater / LowWater are the backlog-per-worker thresholds that
	// escalate / de-escalate the ladder. Defaults 2.0 / 0.5.
	HighWater, LowWater float64
	// MissHigh / MissLow are the deadline-miss-rate (EWMA) thresholds
	// that escalate / de-escalate the ladder. Defaults 0.3 / 0.05.
	MissHigh, MissLow float64
	// Dwell is the minimum time between ladder moves. Default 200ms.
	Dwell time.Duration
	// PauseBase / PauseMax bound the rung-3 pause backoff: a paused
	// stream resumes after PauseBase×2^k, capped at PauseMax. Defaults
	// 100ms / 2s.
	PauseBase, PauseMax time.Duration
	// DisableAutoDegrade freezes the ladder; SetDegradation still moves
	// it manually (deterministic tests).
	DisableAutoDegrade bool
	// Dispatch selects the pool's task ordering: DispatchAuto (EDF while
	// any admitted stream has a frame deadline, weighted fair otherwise),
	// DispatchFair, or DispatchEDF. See edf.go.
	Dispatch DispatchPolicy
	// BestEffortLag is the virtual deadline granted to tasks of streams
	// without one while EDF is active: enqueue time + BestEffortLag.
	// Best-effort work thus runs late but keeps flowing. Default 500ms.
	BestEffortLag time.Duration
	// StarveWindow bounds how long any queued head task can wait under
	// EDF before it runs regardless of band or deadline — the aging
	// guard that keeps the documented no-starvation invariant. Default 2s.
	StarveWindow time.Duration
	// DisableSlackActions freezes the slack predictor's per-frame
	// actions (plan-time shedding and split assist) while leaving the
	// dispatch order alone — the baseline arm of the deadline benchmarks
	// and the deterministic-golden switch.
	DisableSlackActions bool
	// Cost is the shared byte→time cost model admission and scheduling
	// calibrate through; nil allocates a fresh one.
	Cost *sched.CostModel
	// Obs, when non-nil, receives the service's scheduling events:
	// KindTask on worker lanes, admission / shed / ladder events on
	// per-stream lanes (obs.StreamLane).
	Obs *obs.Tracer
}

func (c *Config) normalize() {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxStreams < 1 {
		c.MaxStreams = 8 * c.Workers
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.TargetUtilization <= 0 {
		c.TargetUtilization = 1.0
	}
	if c.DefaultDemand <= 0 {
		c.DefaultDemand = 0.5
	}
	if c.Watchdog == 0 {
		c.Watchdog = 30 * time.Second
	}
	if c.Tick <= 0 {
		c.Tick = 25 * time.Millisecond
	}
	if c.HighWater <= 0 {
		c.HighWater = 2.0
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.5
	}
	if c.MissHigh <= 0 {
		c.MissHigh = 0.3
	}
	if c.MissLow <= 0 {
		c.MissLow = 0.05
	}
	if c.Dwell <= 0 {
		c.Dwell = 200 * time.Millisecond
	}
	if c.PauseBase <= 0 {
		c.PauseBase = 100 * time.Millisecond
	}
	if c.PauseMax <= 0 {
		c.PauseMax = 2 * time.Second
	}
	if c.BestEffortLag <= 0 {
		c.BestEffortLag = 500 * time.Millisecond
	}
	if c.StarveWindow <= 0 {
		c.StarveWindow = 2 * time.Second
	}
	if c.Cost == nil {
		c.Cost = &sched.CostModel{}
	}
}

// waiter is one admission-queue entry. wakeWaitersLocked reserves
// capacity (demand, stream slot) before closing ch and marks the
// waiter reserved; Close grants without reserving. A waiter that was
// granted but cannot proceed (cancelled concurrently, or woken by
// Close) returns the reservation only if one was actually made.
type waiter struct {
	demand   float64
	ch       chan struct{}
	granted  bool
	reserved bool
}

// Server is the multi-stream decode service. Create with NewServer,
// feed it streams with Decode (one goroutine per stream, typically the
// connection handler), and shut it down with Close.
type Server struct {
	cfg  Config
	cost *sched.CostModel
	obs  *obs.Tracer

	mu      sync.Mutex
	cond    *sync.Cond // wakes pool workers (new task, resume, close)
	closed  bool
	streams map[int]*stream
	nextID  int
	nslots  int     // admitted + granted-not-yet-registered streams
	demand  float64 // Σ admitted demand, in workers
	waiters []*waiter
	backlog int // queued (not yet running) tasks across all streams

	nDeadline   int           // admitted streams with a frame deadline (EDF trigger)
	busy        int           // workers currently running a task
	pendingCost time.Duration // Σ predicted cost of queued tasks (slack input)

	rung     int // degradation ladder position, 0..3
	lastMove time.Time
	missEWMA float64

	avgPicBytes float64 // EWMA of compressed bytes per picture (admission input)

	// Monitor-sampled counters (updated from display/worker paths).
	displays   atomic.Int64
	misses     atomic.Int64
	seenDisp   int64 // monitor's last samples
	seenMiss   int64
	admitted   atomic.Int64
	rejected   atomic.Int64
	pauses     atomic.Int64
	wedged     atomic.Int64
	slackSheds atomic.Int64 // pictures shed by per-frame slack prediction
	assists    atomic.Int64 // tasks granted split fan-out at dispatch
	stopMon    chan struct{}
	wg         sync.WaitGroup
}

// NewServer starts the shared pool and the overload monitor.
func NewServer(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:     cfg,
		cost:    cfg.Cost,
		obs:     cfg.Obs,
		streams: make(map[int]*stream),
		stopMon: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.obs.SetMeta("service", cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		s.wg.Add(1)
		go s.worker(wi)
	}
	s.wg.Add(1)
	go s.monitor()
	return s
}

// Close rejects new streams, aborts every admitted one, and waits for
// the pool and monitor to exit. In-flight Decode calls return promptly
// with their teardown stats. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for _, st := range s.streams {
		st.fail(ErrServerClosed)
	}
	for _, w := range s.waiters {
		if !w.granted {
			w.granted = true
			close(w.ch)
		}
	}
	s.waiters = nil
	s.mu.Unlock()
	s.cond.Broadcast()
	close(s.stopMon)
	s.wg.Wait()
	return nil
}

// capacity is the admission budget in workers.
func (s *Server) capacity() float64 {
	return float64(s.cfg.Workers) * s.cfg.TargetUtilization
}

// demandFor estimates one stream's steady-state worker-fraction: for a
// paced stream with a *calibrated* cost model, picture rate × predicted
// decode time of an average picture; otherwise the configured flat
// default. The calibration gate matters: Predict returns 0 until the
// model has observations, and one observation is cold-start noise — an
// uncalibrated model must read as "cost unknown, charge the
// conservative default", never as "free", or the first burst of
// arrivals is admitted at near-zero demand and lands straight on the
// degradation ladder. The estimate is clamped to capacity(): a
// stream that wants more than the whole pool can never be satisfied,
// and an unclamped demand would park it in the FIFO admission queue
// forever — blocking every waiter behind it even on an idle pool.
// Clamped, it admits alone on an empty pool and simply runs behind
// real time, which the degradation ladder then handles.
func (s *Server) demandFor(picRate float64) float64 {
	d := s.cfg.DefaultDemand
	if picRate > 0 && s.cost.Calibrated() && s.avgPicBytes > 0 {
		perPic := s.cost.Predict(int64(s.avgPicBytes))
		if p := picRate * perPic.Seconds(); p > 0 {
			d = p
		}
	}
	if cap := s.capacity(); d > cap {
		d = cap
	}
	return d
}

func (s *Server) canAdmitLocked(d float64) bool {
	return s.nslots < s.cfg.MaxStreams && s.demand+d <= s.capacity()
}

// wakeWaitersLocked grants queued admissions FIFO while capacity lasts.
func (s *Server) wakeWaitersLocked() {
	for len(s.waiters) > 0 && s.canAdmitLocked(s.waiters[0].demand) {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.demand += w.demand
		s.nslots++
		w.granted = true
		w.reserved = true
		close(w.ch)
	}
}

// admit runs admission control for one arriving stream: immediate
// admission under capacity, a bounded FIFO wait otherwise, rejection
// when the queue is full or the ladder is at its top rung. It returns
// the reserved demand; the caller must register or release it.
func (s *Server) admit(ctx ctxDone, picRate float64) (float64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrServerClosed
	}
	if s.rung >= rungReject {
		s.mu.Unlock()
		return 0, ErrRejected
	}
	d := s.demandFor(picRate)
	if len(s.waiters) == 0 && s.canAdmitLocked(d) {
		s.demand += d
		s.nslots++
		s.mu.Unlock()
		return d, nil
	}
	if len(s.waiters) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return 0, ErrRejected
	}
	w := &waiter{demand: d, ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ch:
		s.mu.Lock()
		closed, reserved := s.closed, w.reserved
		s.mu.Unlock()
		if closed {
			// Close grants waiters without reserving capacity; return
			// the reservation only if wakeWaitersLocked made one before
			// the shutdown.
			if reserved {
				s.releaseSlot(d)
			}
			return 0, ErrServerClosed
		}
		return d, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Granted concurrently with cancellation: return the
			// reservation (if any — Close grants without reserving) and
			// pass it on.
			if w.reserved {
				s.demand -= d
				s.nslots--
				s.wakeWaitersLocked()
			}
			s.mu.Unlock()
			return 0, ctx.Err()
		}
		for i, q := range s.waiters {
			if q == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return 0, ctx.Err()
	}
}

// ctxDone is the slice of context.Context admission needs (avoids
// importing context just for the interface).
type ctxDone interface {
	Done() <-chan struct{}
	Err() error
}

// releaseSlot returns one admission reservation (granted but not
// registered, or a finished stream's).
func (s *Server) releaseSlot(d float64) {
	s.mu.Lock()
	s.demand -= d
	s.nslots--
	s.wakeWaitersLocked()
	s.mu.Unlock()
}

// register installs an admitted stream (its demand already reserved)
// and applies the ladder's current rung to it.
func (s *Server) register(st *stream) {
	s.mu.Lock()
	s.streams[st.id] = st
	if st.deadline > 0 {
		s.nDeadline++
	}
	applyRung(st, s.rung)
	s.mu.Unlock()
	s.admitted.Add(1)
}

// unregister removes a finished stream and recycles its capacity.
func (s *Server) unregister(st *stream) {
	s.mu.Lock()
	delete(s.streams, st.id)
	s.demand -= st.demand
	s.nslots--
	if st.deadline > 0 {
		s.nDeadline--
	}
	s.backlog -= len(st.pending)
	for _, tk := range st.pending {
		s.pendingCost -= tk.cost
	}
	if s.pendingCost < 0 {
		s.pendingCost = 0
	}
	st.pending = nil
	s.wakeWaitersLocked()
	s.mu.Unlock()
	s.cond.Broadcast()
}

// notePicBytesLocked feeds the admission estimator's bytes-per-picture
// EWMA from one completed task. Called with s.mu held.
func (s *Server) notePicBytesLocked(bytes int64, pics int) {
	if pics <= 0 {
		return
	}
	per := float64(bytes) / float64(pics)
	if s.avgPicBytes == 0 {
		s.avgPicBytes = per
	} else {
		s.avgPicBytes += 0.2 * (per - s.avgPicBytes)
	}
}

// Metrics is a point-in-time snapshot of the service's gauges.
type Metrics struct {
	Workers   int
	Streams   int   // currently admitted
	QueuedAdm int   // admission waiters
	Backlog   int   // queued decode tasks
	Rung      int   // degradation ladder position
	Admitted  int64 // streams admitted since start
	Rejected  int64 // streams rejected since start
	Pauses    int64 // rung-3 pause episodes
	Wedged    int64 // watchdog failures
	Displayed int64 // pictures delivered across all streams
	// Misses counts frame-deadline misses across all streams: frames
	// delivered late, plus frames fed but never delivered (cancelled or
	// wedged streams) that were already past deadline at teardown. Shed
	// frames never count — shedding is a decision, not a miss.
	Misses     int64
	MissEWMA   float64
	DemandUsed float64 // Σ admitted demand, in workers
	SlackSheds int64   // pictures shed by per-frame slack prediction
	Assists    int64   // tasks granted split fan-out at dispatch
}

// Metrics returns a snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Workers:    s.cfg.Workers,
		Streams:    len(s.streams),
		QueuedAdm:  len(s.waiters),
		Backlog:    s.backlog,
		Rung:       s.rung,
		MissEWMA:   s.missEWMA,
		DemandUsed: s.demand,
	}
	s.mu.Unlock()
	m.Admitted = s.admitted.Load()
	m.Rejected = s.rejected.Load()
	m.Pauses = s.pauses.Load()
	m.Wedged = s.wedged.Load()
	m.Displayed = s.displays.Load()
	m.Misses = s.misses.Load()
	m.SlackSheds = s.slackSheds.Load()
	m.Assists = s.assists.Load()
	return m
}

// Rung returns the ladder's current position (0..3).
func (s *Server) Rung() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rung
}

func (s *Server) streamErr(id int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("stream %d: %w", id, err)
}
