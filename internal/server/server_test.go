package server_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/server"
)

var streamCache sync.Map

type streamKey struct{ w, h, pics, gop int }

func testStream(t testing.TB, w, h, pics, gop int) []byte {
	t.Helper()
	key := streamKey{w, h, pics, gop}
	if v, ok := streamCache.Load(key); ok {
		return v.([]byte)
	}
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: w, Height: h, Pictures: pics, GOPSize: gop,
		RepeatSequenceHeader: true,
	}, frame.NewSynth(w, h))
	if err != nil {
		t.Fatal(err)
	}
	streamCache.Store(key, res.Data)
	return res.Data
}

type collectSink struct {
	mu     sync.Mutex
	frames []*frame.Frame
}

func (c *collectSink) add(f *frame.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f.Clone())
	c.mu.Unlock()
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (pool, monitor, and per-stream state must not outlive the
// server).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running (baseline %d)\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func seqOracle(t *testing.T, data []byte, policy core.Resilience) (*core.Stats, []*frame.Frame) {
	t.Helper()
	var sink collectSink
	st, err := core.Decode(data, core.Options{
		Mode: core.ModeSequential, Workers: 1, Resilience: policy, Sink: sink.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, sink.frames
}

// TestServiceMatchesSequential: a single stream through the service at
// rung 0 is bit-identical to the batch sequential oracle.
func TestServiceMatchesSequential(t *testing.T) {
	data := testStream(t, 96, 64, 12, 4)
	refSt, refFrames := seqOracle(t, data, core.ConcealSlice)

	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{Workers: 3, DisableAutoDegrade: true})
	var sink collectSink
	ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
		Resilience: core.ConcealSlice, Sink: sink.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ss.Stats
	if st.Displayed != refSt.Displayed || st.Pictures != refSt.Pictures {
		t.Fatalf("displayed %d/%d, oracle %d/%d", st.Displayed, st.Pictures, refSt.Displayed, refSt.Pictures)
	}
	if st.Errors != refSt.Errors {
		t.Fatalf("error stats %+v, oracle %+v", st.Errors, refSt.Errors)
	}
	if st.Shed.Any() {
		t.Fatalf("rung 0 shed pictures: %+v", st.Shed)
	}
	if len(sink.frames) != len(refFrames) {
		t.Fatalf("%d frames, oracle %d", len(sink.frames), len(refFrames))
	}
	for i := range refFrames {
		if !sink.frames[i].Equal(refFrames[i]) {
			t.Fatalf("frame %d differs from sequential oracle", i)
		}
	}
	if st.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", st.LeakedFrameBytes)
	}
	srv.Close()
	waitGoroutines(t, base)
}

// TestShedBitExact: under forced shedding, every non-shed picture must
// remain bit-identical to the sequential oracle — B pictures are the
// only sacrifice at rung 1, B and P at rung 2, and the substitutions
// are accounted in Stats.Shed, never in Stats.Errors.
func TestShedBitExact(t *testing.T) {
	data := testStream(t, 96, 64, 12, 4)
	_, refFrames := seqOracle(t, data, core.ConcealSlice)

	for _, tc := range []struct {
		rung int
		keep func(byte) bool // picture types that must stay bit-exact
	}{
		{1, func(ty byte) bool { return ty == 'I' || ty == 'P' }},
		{2, func(ty byte) bool { return ty == 'I' }},
	} {
		srv := server.NewServer(server.Config{Workers: 3, DisableAutoDegrade: true})
		srv.SetDegradation(tc.rung)
		var sink collectSink
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Resilience: core.ConcealSlice, Sink: sink.add,
		})
		if err != nil {
			t.Fatalf("rung %d: %v", tc.rung, err)
		}
		st := ss.Stats
		if st.Displayed != st.Pictures || st.Displayed != len(refFrames) {
			t.Fatalf("rung %d: displayed %d of %d (oracle %d) — shed pictures must still display",
				tc.rung, st.Displayed, st.Pictures, len(refFrames))
		}
		if !st.Shed.Any() || st.Shed.BPictures == 0 {
			t.Fatalf("rung %d: no shed accounting: %+v", tc.rung, st.Shed)
		}
		if tc.rung >= 2 && st.Shed.RefPictures == 0 {
			t.Fatalf("rung %d: no reference pictures shed: %+v", tc.rung, st.Shed)
		}
		if st.Errors.DroppedPictures != 0 {
			t.Fatalf("rung %d: shed pictures leaked into error stats: %+v", tc.rung, st.Errors)
		}
		kept, shed := 0, 0
		for i, f := range sink.frames {
			if tc.keep(f.PictureType) {
				if !f.Equal(refFrames[i]) {
					t.Fatalf("rung %d: kept %c frame %d differs from oracle", tc.rung, f.PictureType, i)
				}
				kept++
			} else {
				shed++
			}
		}
		if kept == 0 || shed == 0 {
			t.Fatalf("rung %d: degenerate stream: %d kept, %d shed", tc.rung, kept, shed)
		}
		if shed != st.Shed.Total() {
			t.Fatalf("rung %d: %d sacrificed picture types in output, Shed reports %d", tc.rung, shed, st.Shed.Total())
		}
		srv.Close()
	}
}

// TestDegradedResilienceAccounting pins the Shed/Errors disjointness
// both ways: damage recovered only because the ladder floored the
// policy counts as degradation; the same damage under the stream's own
// resilient policy counts as errors — never both.
func TestDegradedResilienceAccounting(t *testing.T) {
	clean := testStream(t, 96, 64, 12, 4)

	// Probe for damage that FailFast refuses but ConcealPicture absorbs
	// as picture drops — the exact situation the degraded floor exists
	// for. Faults are random placements, so search specs × seeds.
	var damaged []byte
probe:
	for _, spec := range []string{"droppic:1", "burst:count=2,len=24", "bitflip:6"} {
		sp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 8; seed++ {
			mut, _ := sp.Apply(clean, seed)
			st, err := core.Decode(mut, core.Options{Mode: core.ModeSequential, Workers: 1, Resilience: core.ConcealPicture})
			if err != nil || st.Errors.DroppedPictures == 0 {
				continue
			}
			if _, err := core.Decode(mut, core.Options{Mode: core.ModeSequential, Workers: 1, Resilience: core.FailFast}); err == nil {
				continue
			}
			damaged = mut
			break probe
		}
	}
	if damaged == nil {
		t.Fatal("no fault spec produced FailFast-fatal, ConcealPicture-droppable damage")
	}

	// The stream's own policy (ConcealPicture) absorbs the damage as an
	// error drop.
	srv := server.NewServer(server.Config{Workers: 2, DisableAutoDegrade: true})
	ss, err := srv.Decode(context.Background(), bytes.NewReader(damaged), server.StreamConfig{
		Resilience: core.ConcealPicture,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Stats.Errors.DroppedPictures == 0 {
		t.Fatalf("undegraded conceal-picture run reported no dropped pictures: %+v", ss.Stats.Errors)
	}
	if ss.Stats.Shed.Any() {
		t.Fatalf("undegraded run reported shed pictures: %+v", ss.Stats.Shed)
	}
	wantDropped := ss.Stats.Errors.DroppedPictures
	srv.Close()

	// A FailFast stream fails on the damage at rung 0...
	srv = server.NewServer(server.Config{Workers: 2, DisableAutoDegrade: true})
	ss, err = srv.Decode(context.Background(), bytes.NewReader(damaged), server.StreamConfig{
		Resilience: core.FailFast,
	})
	if err == nil {
		t.Fatal("FailFast stream decoded damaged input cleanly at rung 0")
	}
	if ss.Stats != nil && ss.Stats.LeakedFrameBytes != 0 {
		t.Fatalf("failed stream leaked %d frame bytes", ss.Stats.LeakedFrameBytes)
	}
	srv.Close()

	// ...but survives under the rung-2 resilience floor, with the
	// recovery accounted as degradation, not as an error drop.
	srv = server.NewServer(server.Config{Workers: 2, DisableAutoDegrade: true})
	srv.SetDegradation(2)
	ss, err = srv.Decode(context.Background(), bytes.NewReader(damaged), server.StreamConfig{
		Resilience: core.FailFast,
	})
	if err != nil {
		t.Fatalf("degraded FailFast stream: %v", err)
	}
	st := ss.Stats
	if st.Shed.DegradedPictures != wantDropped {
		t.Fatalf("degraded run recovered %d pictures, want %d (as DegradedPictures): %+v",
			st.Shed.DegradedPictures, wantDropped, st.Shed)
	}
	if st.Errors.DroppedPictures != 0 {
		t.Fatalf("degraded recoveries double-counted as error drops: %+v", st.Errors)
	}
	if st.Displayed != st.Pictures {
		t.Fatalf("degraded run displayed %d of %d", st.Displayed, st.Pictures)
	}
	srv.Close()
}

// blockReader never returns — the hung-source stand-in.
type blockReader struct{ ch chan struct{} }

func (r *blockReader) Read(p []byte) (int, error) { <-r.ch; return 0, errors.New("closed") }

// TestAdmissionQueueAndReject: a full server queues the next arrival
// (FIFO, with its wait reported) and rejects beyond the queue bound —
// and rejects everything at the ladder's top rung.
func TestAdmissionQueueAndReject(t *testing.T) {
	data := testStream(t, 64, 48, 8, 4)
	srv := server.NewServer(server.Config{
		Workers: 1, MaxStreams: 1, QueueDepth: 1, DisableAutoDegrade: true,
	})
	defer srv.Close()

	gate := make(chan struct{})
	opened := make(chan struct{})
	var once sync.Once
	type result struct {
		ss  *server.StreamStats
		err error
	}
	aDone := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Sink: func(f *frame.Frame) {
				once.Do(func() { close(opened) })
				<-gate
			},
		})
		aDone <- result{ss, err}
	}()
	<-opened // A admitted and decoding

	bDone := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{})
		bDone <- result{ss, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().QueuedAdm != 1 {
		if time.Now().After(deadline) {
			t.Fatal("stream B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// C: queue full → immediate rejection.
	ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{})
	if !errors.Is(err, server.ErrRejected) {
		t.Fatalf("queue-full arrival: err=%v, want ErrRejected", err)
	}
	if ss == nil {
		t.Fatal("rejected stream must still report StreamStats")
	}

	// A drains; B must be admitted and complete, reporting its wait.
	close(gate)
	ra, rb := <-aDone, <-bDone
	if ra.err != nil || rb.err != nil {
		t.Fatalf("a=%v b=%v", ra.err, rb.err)
	}
	if rb.ss.QueueWait <= 0 {
		t.Fatal("queued stream reported zero QueueWait")
	}
	m := srv.Metrics()
	if m.Admitted != 2 || m.Rejected != 1 {
		t.Fatalf("admitted %d rejected %d, want 2/1", m.Admitted, m.Rejected)
	}

	// Top rung: arrivals rejected outright.
	srv.SetDegradation(3)
	if _, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{}); !errors.Is(err, server.ErrRejected) {
		t.Fatalf("top-rung arrival: err=%v, want ErrRejected", err)
	}
}

// TestWatchdogWedgedStream: a stream whose queued work stops moving
// (here: every worker hostage to another stream's blocked sink) is
// failed with ErrWedged instead of holding its resources forever.
func TestWatchdogWedgedStream(t *testing.T) {
	data := testStream(t, 64, 48, 8, 4)
	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{
		Workers: 1, DisableAutoDegrade: true,
		Watchdog: 50 * time.Millisecond, Tick: 5 * time.Millisecond,
	})

	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	type result struct {
		ss  *server.StreamStats
		err error
	}
	aDone := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Sink: func(f *frame.Frame) {
				once.Do(func() { close(started) })
				<-release
			},
		})
		aDone <- result{ss, err}
	}()
	<-started // A holds the only worker inside its sink

	bDone := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{})
		bDone <- result{ss, err}
	}()

	// Both streams are stale: A is stuck in its sink, B is starved
	// behind it. The watchdog must fail both rather than let either hold
	// its queue slot forever.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Wedged < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog fired %d times, want 2", srv.Metrics().Wedged)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	rb := <-bDone
	<-aDone
	if !errors.Is(rb.err, server.ErrWedged) {
		t.Fatalf("starved stream err=%v, want ErrWedged", rb.err)
	}
	if rb.ss.Stats != nil && rb.ss.Stats.LeakedFrameBytes != 0 {
		t.Fatalf("wedged stream leaked %d frame bytes", rb.ss.Stats.LeakedFrameBytes)
	}
	srv.Close()
	waitGoroutines(t, base)
}

// TestPauseLadderAndResume: at the top rung the lowest-priority class
// pauses with bounded backoff, the higher class keeps running, and the
// paused stream still completes — bounded-backoff re-admission, never
// starvation. The ladder events must land on the streams' obs lanes.
func TestPauseLadderAndResume(t *testing.T) {
	data := testStream(t, 64, 48, 48, 4)
	tr := obs.New(0)
	srv := server.NewServer(server.Config{
		Workers: 1, DisableAutoDegrade: true, Obs: tr,
		Tick: 5 * time.Millisecond, PauseBase: 20 * time.Millisecond, PauseMax: 60 * time.Millisecond,
	})
	defer srv.Close()

	slow := func(f *frame.Frame) { time.Sleep(2 * time.Millisecond) }
	type result struct {
		ss  *server.StreamStats
		err error
	}
	run := func(prio int, done chan result) {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Priority: prio, Sink: slow, MaxInFlight: 2,
		})
		done <- result{ss, err}
	}
	lo, hi := make(chan result, 1), make(chan result, 1)
	go run(0, lo)
	go run(1, hi)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Streams != 2 {
		if time.Now().After(deadline) {
			t.Fatal("streams never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	srv.SetDegradation(3)

	rlo, rhi := <-lo, <-hi
	if rlo.err != nil || rhi.err != nil {
		t.Fatalf("lo=%v hi=%v", rlo.err, rhi.err)
	}
	if rlo.ss.Stats.Displayed != rlo.ss.Stats.Pictures {
		t.Fatalf("paused stream displayed %d of %d — starved", rlo.ss.Stats.Displayed, rlo.ss.Stats.Pictures)
	}
	if rlo.ss.Paused == 0 {
		t.Fatal("low-priority stream was never paused at rung 3")
	}
	if rhi.ss.Paused != 0 {
		t.Fatalf("high-priority stream was paused %d times", rhi.ss.Paused)
	}
	if p := srv.Metrics().Pauses; p == 0 {
		t.Fatalf("metrics report %d pauses", p)
	}

	loLane := obs.StreamLane(rlo.ss.ID)
	var pauses, resumes, degrades int
	for _, e := range tr.Snapshot().Events {
		if e.Lane != loLane {
			continue
		}
		switch e.Kind {
		case obs.KindPause:
			pauses++
		case obs.KindResume:
			resumes++
		case obs.KindDegrade:
			degrades++
		}
	}
	if pauses == 0 || resumes == 0 || degrades == 0 {
		t.Fatalf("ladder events missing from stream lane: %d pauses, %d resumes, %d degrades", pauses, resumes, degrades)
	}
	srv.SetDegradation(0)
}

// TestAutoDegradeNoStarvationAtTopRung: with the auto ladder held at
// the top rung by sustained two-class overload, the paused low class
// must still make progress — every pause/resume cycle owes it at least
// one completed task before it may be re-paused, and paused streams'
// queued tasks must not count as offered load. The discriminating
// assertion is that the short low-priority stream finishes while the
// long high-priority one is still running: a ladder that re-pauses a
// resumed stream in the same monitor tick gives the low class zero
// service until the overload itself ends.
func TestAutoDegradeNoStarvationAtTopRung(t *testing.T) {
	loData := testStream(t, 48, 32, 32, 4)
	hiData := testStream(t, 48, 32, 256, 4)
	srv := server.NewServer(server.Config{
		Workers: 1,
		Tick:    time.Millisecond, Dwell: 2 * time.Millisecond,
		HighWater: 0.5, LowWater: 0.25,
		PauseBase: 5 * time.Millisecond, PauseMax: 20 * time.Millisecond,
	})
	defer srv.Close()

	type result struct {
		ss  *server.StreamStats
		err error
	}
	var hiDone atomic.Bool
	hiC := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(hiData), server.StreamConfig{
			Priority: 1, MaxInFlight: 2,
			Sink: func(f *frame.Frame) { time.Sleep(2 * time.Millisecond) },
		})
		hiDone.Store(true)
		hiC <- result{ss, err}
	}()
	loC := make(chan result, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(loData), server.StreamConfig{
			Priority: 0, MaxInFlight: 2,
			Sink: func(f *frame.Frame) { time.Sleep(time.Millisecond) },
		})
		loC <- result{ss, err}
	}()

	rlo := <-loC
	hiStillRunning := !hiDone.Load()
	rhi := <-hiC
	if rlo.err != nil || rhi.err != nil {
		t.Fatalf("lo=%v hi=%v", rlo.err, rhi.err)
	}
	if rlo.ss.Paused == 0 {
		t.Fatal("ladder never paused the low-priority stream — overload did not reach the top rung")
	}
	if rlo.ss.Stats.Displayed != rlo.ss.Stats.Pictures {
		t.Fatalf("low stream displayed %d of %d", rlo.ss.Stats.Displayed, rlo.ss.Stats.Pictures)
	}
	if !hiStillRunning {
		t.Fatal("low stream starved: it only finished after the high stream's overload ended")
	}
}

// TestCancelMidDegradation is the overload-teardown acceptance:
// cancellation and deadline expiry while the ladder is active must
// surface the context error and leak neither goroutines nor pooled
// frames.
func TestCancelMidDegradation(t *testing.T) {
	data := testStream(t, 64, 48, 24, 4)
	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{Workers: 3, DisableAutoDegrade: true})
	srv.SetDegradation(2)

	const n = 6
	errs := make(chan error, n)
	stats := make(chan *server.StreamStats, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			var ctx context.Context
			var cancel context.CancelFunc
			if i == 0 {
				ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
			} else {
				ctx, cancel = context.WithCancel(context.Background())
			}
			defer cancel()
			shown := 0
			ss, err := srv.Decode(ctx, bytes.NewReader(data), server.StreamConfig{
				Resilience:  core.ConcealSlice,
				MaxInFlight: 1,
				Sink: func(f *frame.Frame) {
					shown++
					if shown == 1 && i != 0 {
						cancel()
					}
					time.Sleep(time.Millisecond)
				},
			})
			stats <- ss
			errs <- err
		}(i)
	}
	cancelled := 0
	for i := 0; i < n; i++ {
		err := <-errs
		ss := <-stats
		if err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stream error %v, want a context error", err)
			}
			cancelled++
		}
		if ss.Stats != nil && ss.Stats.LeakedFrameBytes != 0 {
			t.Fatalf("cancelled stream leaked %d frame bytes", ss.Stats.LeakedFrameBytes)
		}
	}
	if cancelled < n-1 {
		t.Fatalf("only %d of %d streams actually cancelled; injection too late", cancelled, n)
	}
	srv.Close()
	waitGoroutines(t, base)
}

// TestServerCloseTeardown: Close aborts admitted streams promptly and
// cleanly; later arrivals get ErrServerClosed.
func TestServerCloseTeardown(t *testing.T) {
	data := testStream(t, 64, 48, 48, 4)
	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{Workers: 2})
	started := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	statc := make(chan *server.StreamStats, 1)
	go func() {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Sink: func(f *frame.Frame) {
				once.Do(func() { close(started) })
				time.Sleep(time.Millisecond)
			},
		})
		statc <- ss
		done <- err
	}()
	<-started
	srv.Close()
	err := <-done
	ss := <-statc
	if !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("aborted stream err=%v, want ErrServerClosed", err)
	}
	if ss.Stats != nil && ss.Stats.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", ss.Stats.LeakedFrameBytes)
	}
	if _, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{}); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("post-close arrival err=%v, want ErrServerClosed", err)
	}
	waitGoroutines(t, base)
}

// TestLoadSmoke is the service gate: 64 synthetic streams — roughly 4×
// over pool capacity — must all complete without wedging, starving, or
// leaking; per-stream throughput within a priority class must stay
// within 3:1; and the per-stream obs lanes must carry the admission and
// delivery record and export to a valid Chrome trace.
func TestLoadSmoke(t *testing.T) {
	const nStreams = 64
	data := testStream(t, 48, 32, 16, 4)
	tr := obs.New(0)
	base := runtime.NumGoroutine()
	srv := server.NewServer(server.Config{
		Workers: 2, MaxStreams: nStreams, QueueDepth: nStreams,
		DefaultDemand: 0.01, // admit everyone: overload is the point
		Tick:          5 * time.Millisecond,
		PauseBase:     10 * time.Millisecond,
		Obs:           tr,
	})

	type result struct {
		ss  *server.StreamStats
		err error
	}
	// Start barrier plus a real per-frame service cost: with free
	// decodes the pool never saturates and wall times measure goroutine
	// start-up skew, not scheduling.
	start := make(chan struct{})
	results := make(chan result, nStreams)
	for i := 0; i < nStreams; i++ {
		go func() {
			<-start
			ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
				Resilience: core.ConcealSlice, MaxInFlight: 2,
				Deadline: 250 * time.Millisecond,
				Sink:     func(f *frame.Frame) { time.Sleep(300 * time.Microsecond) },
			})
			results <- result{ss, err}
		}()
	}
	close(start)
	var all []*server.StreamStats
	for i := 0; i < nStreams; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("stream failed under load: %v", r.err)
		}
		all = append(all, r.ss)
	}
	minTP, maxTP := 0.0, 0.0
	for _, ss := range all {
		st := ss.Stats
		if st.Displayed == 0 || st.Displayed != st.Pictures {
			t.Fatalf("stream %d displayed %d of %d — did not progress", ss.ID, st.Displayed, st.Pictures)
		}
		if st.LeakedFrameBytes != 0 {
			t.Fatalf("stream %d leaked %d frame bytes", ss.ID, st.LeakedFrameBytes)
		}
		if st.Wall <= 0 {
			t.Fatalf("stream %d reported no wall time", ss.ID)
		}
		tp := float64(st.Displayed) / st.Wall.Seconds()
		if minTP == 0 || tp < minTP {
			minTP = tp
		}
		if tp > maxTP {
			maxTP = tp
		}
	}
	if maxTP > 3.0*minTP {
		t.Fatalf("fairness: per-stream throughput spread %.1f..%.1f pics/s exceeds 3:1", minTP, maxTP)
	}
	m := srv.Metrics()
	if m.Admitted != nStreams || m.Wedged != 0 {
		t.Fatalf("metrics: admitted %d wedged %d, want %d/0", m.Admitted, m.Wedged, nStreams)
	}

	// Per-stream lanes: every admitted stream must show its admission
	// and its deliveries.
	tl := tr.Snapshot()
	if tl.Dropped != 0 {
		t.Fatalf("trace dropped %d events", tl.Dropped)
	}
	admits := make(map[int]bool)
	displays := make(map[int]int)
	for _, e := range tl.Events {
		if id, ok := obs.StreamOf(e.Lane); ok {
			switch e.Kind {
			case obs.KindAdmit:
				admits[id] = true
			case obs.KindDisplay:
				displays[id]++
			}
		}
	}
	for _, ss := range all {
		if !admits[ss.ID] {
			t.Fatalf("stream %d has no admission event on its lane", ss.ID)
		}
		if displays[ss.ID] != ss.Stats.Displayed {
			t.Fatalf("stream %d lane shows %d deliveries, stats say %d", ss.ID, displays[ss.ID], ss.Stats.Displayed)
		}
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("service trace invalid: %v", err)
	}
	srv.Close()
	waitGoroutines(t, base)
}

// TestWeightedFairShare: with sustained contention, a priority-1
// stream must receive about twice the service of a priority-0 stream
// (weight = priority+1).
func TestWeightedFairShare(t *testing.T) {
	data := testStream(t, 64, 48, 48, 4)
	srv := server.NewServer(server.Config{Workers: 1, DisableAutoDegrade: true})
	defer srv.Close()
	type result struct {
		ss  *server.StreamStats
		err error
	}
	run := func(prio int, done chan result) {
		ss, err := srv.Decode(context.Background(), bytes.NewReader(data), server.StreamConfig{
			Priority: prio, MaxInFlight: 2,
			Sink: func(f *frame.Frame) { time.Sleep(500 * time.Microsecond) },
		})
		done <- result{ss, err}
	}
	lo, hi := make(chan result, 1), make(chan result, 1)
	go run(0, lo)
	go run(1, hi)
	rlo, rhi := <-lo, <-hi
	if rlo.err != nil || rhi.err != nil {
		t.Fatalf("lo=%v hi=%v", rlo.err, rhi.err)
	}
	// Both complete (equal lengths), but the weighted pick must finish
	// the heavy class's work no slower: the high-priority stream's wall
	// cannot exceed the low-priority one's by more than measurement
	// noise.
	if rhi.ss.Stats.Wall > rlo.ss.Stats.Wall+rlo.ss.Stats.Wall/2 {
		t.Fatalf("priority inversion: hi wall %v vs lo wall %v", rhi.ss.Stats.Wall, rlo.ss.Stats.Wall)
	}
}
