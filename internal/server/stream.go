package server

import (
	"context"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/obs"
	scan "mpeg2par/internal/stream"
	"mpeg2par/internal/vldsplit"
)

// StreamConfig is one stream's budgets and preferences.
type StreamConfig struct {
	// Priority orders streams for fair dispatch and degradation: higher
	// values get proportionally more pool service (weight priority+1)
	// and are paused last. Default 0 (best effort).
	Priority int
	// Deadline is the per-frame latency budget, measured from the frame
	// being fed to the pool to its in-order delivery; misses are counted
	// (never enforced by dropping — shedding is the ladder's job) and
	// drive the overload controller. Zero disables.
	Deadline time.Duration
	// MaxInFlight bounds the stream's scan-ahead: how many planned
	// groups may be queued or decoding at once before its scanner
	// blocks. Default 4.
	MaxInFlight int
	// Resilience is the stream's requested error policy (the ladder may
	// temporarily floor it at conceal-picture while degraded).
	Resilience core.Resilience
	// Sink receives the stream's frames in display order (valid only
	// during the call). Nil discards output.
	Sink func(*frame.Frame)
	// PicRate, when positive, paces the stream's scanner to feed about
	// this many pictures per second (a real-time source) and lets
	// admission charge the stream's true predicted cost instead of the
	// flat default. Zero feeds as fast as backpressure allows.
	PicRate float64
	// ChunkSize is the scanner's read granularity (0 = default).
	ChunkSize int
	// Index, when non-nil, is the stream's intra-slice split index
	// (vldsplit): with a Deadline set, frames predicted slack-tight may
	// fan their tall slices out across idle workers (bit-exact by
	// construction; see edf.go). Without it, slack can only shed.
	Index *vldsplit.Index
}

// stream is one admitted stream's server-side state.
type stream struct {
	id     int
	lane   int // obs lane (obs.StreamLane(id))
	prio   int
	weight float64 // prio+1, the fair-dispatch service weight
	demand float64 // admission reservation, in workers
	srv    *Server
	sess   *core.Session

	// Guarded by srv.mu.
	pending     []*task
	inFlight    int
	served      float64 // pictures completed, the fair-dispatch key
	paused      bool
	mustServe   bool // resumed but no task completed yet: exempt from re-pause
	pauseUntil  time.Time
	pauseExp    int // backoff exponent (doubles each pause episode)
	pausedCount int

	tokens  chan struct{} // MaxInFlight gate
	wgTasks sync.WaitGroup

	failOnce sync.Once
	failCh   chan struct{} // closed at first failure (unblocks the gate)

	lastProgress atomic.Int64 // UnixNano of last feed/complete/display/resume

	deadline time.Duration
	index    *vldsplit.Index
	dmu      sync.Mutex
	feedAt   map[int]feedMark // display index → feed-time facts
	lats     []time.Duration
	misses   int
	predHist SlackHist // predicted slack at feed (deadline streams)
	actHist  SlackHist // actual slack at delivery (deadline − latency)
	slackShd int       // pictures shed by slack prediction (subset of Stats.Shed)
}

// feedMark is what the miss accounting remembers about one fed frame:
// when it was fed, what slack the predictor expected (when the model
// was calibrated), and whether the frame was shed at plan time — shed
// frames are a degradation decision, never a deadline miss, which is
// what keeps Stats.Shed and the miss counters disjoint.
type feedMark struct {
	at    time.Time
	pred  time.Duration
	known bool
	shed  bool
}

const maxLatencySamples = 1 << 16

// fail latches the stream's first failure: the session aborts (queued
// tasks become drains) and the token gate unblocks. Safe anywhere,
// including under srv.mu.
func (st *stream) fail(err error) {
	st.failOnce.Do(func() {
		st.sess.Abort(err)
		close(st.failCh)
	})
	st.srv.cond.Broadcast()
}

func (st *stream) touch() { st.lastProgress.Store(time.Now().UnixNano()) }

func (st *stream) progress() time.Time { return time.Unix(0, st.lastProgress.Load()) }

// noteFed stamps the feed-time facts of each display slot a task
// covers: fed time, the predictor's slack verdict, and which slots were
// shed at plan time (excluded from miss accounting).
func (st *stream) noteFed(t *core.SessionTask, now time.Time, pred time.Duration, known bool) {
	shed := t.ShedDisplays()
	st.dmu.Lock()
	for i := 0; i < t.Pictures(); i++ {
		idx := t.DisplayBase() + i
		fm := feedMark{at: now, pred: pred, known: known}
		for _, si := range shed {
			if si == idx {
				fm.shed = true
				break
			}
		}
		st.feedAt[idx] = fm
		if st.deadline > 0 && known {
			st.predHist.Add(pred)
		}
	}
	st.dmu.Unlock()
}

// noteDisplayed closes one frame's latency sample on delivery. A late
// shed frame is not a miss: its substitution was the ladder's (or the
// slack predictor's) decision, and double-counting it as a miss would
// let one overload event feed the miss EWMA twice.
func (st *stream) noteDisplayed(idx int) {
	now := time.Now()
	st.touch()
	st.srv.displays.Add(1)
	st.dmu.Lock()
	if fed, ok := st.feedAt[idx]; ok {
		delete(st.feedAt, idx)
		lat := now.Sub(fed.at)
		if len(st.lats) < maxLatencySamples {
			st.lats = append(st.lats, lat)
		}
		if st.deadline > 0 {
			st.actHist.Add(st.deadline - lat)
			if lat > st.deadline && !fed.shed {
				st.misses++
				st.srv.misses.Add(1)
			}
		}
	}
	st.dmu.Unlock()
}

// accountUndelivered settles the frames still marked fed at teardown —
// shed, abandoned on cancel, or stuck behind a wedge — which the
// delivery path never saw. Any non-shed frame already past its deadline
// counts as a miss; frames whose budget had not yet expired don't (the
// stream ended before the verdict was due). This is the other half of
// the undercount fix: a cancelled or wedged stream used to vanish from
// the miss statistics entirely, making overload look healthier the
// harder it failed.
func (st *stream) accountUndelivered() {
	if st.deadline <= 0 {
		return
	}
	now := time.Now()
	st.dmu.Lock()
	for idx, fed := range st.feedAt {
		if !fed.shed && now.Sub(fed.at) > st.deadline {
			st.misses++
			st.srv.misses.Add(1)
		}
		delete(st.feedAt, idx)
	}
	st.dmu.Unlock()
}

// complete is a pool worker's epilogue for one task: progress and
// fairness bookkeeping, the admission estimator's bytes-per-picture
// sample, then the token release that re-opens the stream's gate.
func (st *stream) complete(t *core.SessionTask, err error) {
	if err != nil {
		st.fail(err)
	}
	s := st.srv
	s.mu.Lock()
	st.inFlight--
	s.busy--
	st.mustServe = false // the post-resume service window has been honored
	st.served += float64(t.Pictures())
	s.notePicBytesLocked(t.Bytes(), t.Pictures())
	s.mu.Unlock()
	st.touch()
	<-st.tokens
	st.wgTasks.Done()
}

// StreamStats reports one finished (or torn-down) stream.
type StreamStats struct {
	ID       int
	Priority int
	// Stats is the decode-side accounting: pictures, work, errors, and
	// Shed — the load-shedding/degradation counts, disjoint from Errors.
	// Nil when the stream was rejected before decoding started.
	Stats *core.Stats
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// DeadlineMisses counts frames delivered after the deadline, plus
	// fed-but-undelivered frames already past deadline at teardown.
	// Shed frames are excluded — Stats.Shed stays disjoint from misses.
	DeadlineMisses int
	// Latencies holds raw feed→delivery samples (capped at 65536).
	Latencies []time.Duration
	// Paused counts rung-3 pause episodes the stream went through.
	Paused int
	// PredictedSlack histograms the slack predictor's feed-time verdicts
	// (deadline − estimated queue delay − predicted cost), one sample
	// per fed frame while the cost model was calibrated. Empty for
	// best-effort streams.
	PredictedSlack SlackHist
	// ActualSlack histograms the delivered outcome (deadline − observed
	// latency) for every delivered frame of a deadline stream. Compare
	// against PredictedSlack to judge the predictor.
	ActualSlack SlackHist
	// SlackShedPictures counts pictures shed by the per-frame slack
	// predictor (a subset of Stats.Shed, which also counts ladder sheds).
	SlackShedPictures int
}

// LatencyP50 returns the median frame latency (0 with no samples).
func (ss *StreamStats) LatencyP50() time.Duration { return ss.latencyQ(0.50) }

// LatencyP99 returns the 99th-percentile frame latency.
func (ss *StreamStats) LatencyP99() time.Duration { return ss.latencyQ(0.99) }

func (ss *StreamStats) latencyQ(q float64) time.Duration {
	if len(ss.Latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ss.Latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Decode runs one stream through the service: admission, scan, shared-
// pool decode, in-order delivery. It blocks until the stream completes,
// is rejected, fails, or ctx is cancelled; the caller typically runs it
// on the connection's goroutine. StreamStats is non-nil in every case.
//
// Teardown is leak-free by construction: cancellation or failure drains
// the stream's queued tasks through the pool (no decode, just
// bookkeeping), waits for them, and tears the session down reclaiming
// every pooled frame — StreamStats.Stats.LeakedFrameBytes is zero, and
// the tests assert it. One caveat: the scanner reads r synchronously,
// so a reader that blocks forever blocks Decode (use a context-aware
// reader for untrusted sources).
func (s *Server) Decode(ctx context.Context, r io.Reader, cfg StreamConfig) (*StreamStats, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	lane := obs.StreamLane(id)
	ss := &StreamStats{ID: id, Priority: cfg.Priority}

	arrival := time.Now()
	demand, err := s.admit(ctx, cfg.PicRate)
	ss.QueueWait = time.Since(arrival)
	if err != nil {
		if err == ErrRejected {
			s.rejected.Add(1)
			s.obs.Record(obs.KindReject, lane, arrival, ss.QueueWait, cfg.Priority, -1, -1)
		}
		return ss, s.streamErr(id, err)
	}
	s.obs.Record(obs.KindAdmit, lane, arrival, ss.QueueWait, cfg.Priority, -1, -1)

	st := &stream{
		id:       id,
		lane:     lane,
		prio:     cfg.Priority,
		weight:   float64(cfg.Priority + 1),
		demand:   demand,
		srv:      s,
		failCh:   make(chan struct{}),
		deadline: cfg.Deadline,
		index:    cfg.Index,
		feedAt:   make(map[int]feedMark),
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4
	}
	st.tokens = make(chan struct{}, maxInFlight)

	sink := cfg.Sink
	sess, err := core.NewSession(core.Options{
		Workers:    s.cfg.Workers,
		Resilience: cfg.Resilience,
		Obs:        s.obs,
		Cost:       s.cost,
		SplitIndex: cfg.Index,
		Sink: func(f *frame.Frame) {
			st.noteDisplayed(f.DisplayIndex)
			if sink != nil {
				sink(f)
			}
		},
	})
	if err != nil {
		s.releaseSlot(demand)
		return ss, s.streamErr(id, err)
	}
	sess.SetLane(lane)
	st.sess = sess
	st.touch()
	s.register(st)

	// Pacing state: a paced stream's scanner sleeps so feeds track the
	// picture rate; deadlines anchor at feed time either way.
	var interval time.Duration
	var due time.Time
	if cfg.PicRate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.PicRate)
		due = time.Now()
	}

	feed := func(u core.Unit) error {
		// The token/deadline gate: one token per in-flight planned
		// group, surrendered when the group's task completes. Blocking
		// here is the backpressure that bounds the stream's memory and
		// queue share.
		select {
		case st.tokens <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		case <-st.failCh:
			return st.sess.Err()
		}
		if interval > 0 {
			if d := time.Until(due); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					<-st.tokens
					return ctx.Err()
				case <-st.failCh:
					t.Stop()
					<-st.tokens
					return st.sess.Err()
				}
			}
		}
		// Price the unit before planning it: a negative-slack frame sheds
		// at plan time (this frame only — the ladder stays where it is),
		// a tight one becomes an assist candidate for dispatch.
		sp := s.planSlack(st, &u)
		if sp.known {
			s.obs.Record(obs.KindSlack, st.lane, time.Now(), 0, u.G, int(sp.pred/time.Microsecond), sp.action)
		}
		ladder := st.sess.ShedLevel()
		t, err := st.sess.FeedShed(u, sp.floor)
		if err != nil {
			<-st.tokens
			return err
		}
		if t == nil {
			<-st.tokens
			return nil
		}
		if sp.floor > ladder && t.ShedPictures() > 0 {
			st.dmu.Lock()
			st.slackShd += t.ShedPictures()
			st.dmu.Unlock()
			s.slackSheds.Add(int64(t.ShedPictures()))
		}
		if interval > 0 {
			due = due.Add(time.Duration(t.Pictures()) * interval)
		}
		now := time.Now()
		st.noteFed(t, now, sp.pred, sp.known)
		st.touch()
		st.wgTasks.Add(1)
		tk := &task{st: st, t: t, enq: now, cost: sp.cost, tight: sp.tight}
		if st.deadline > 0 {
			tk.deadline = now.Add(st.deadline)
		}
		s.enqueue(tk)
		return nil
	}

	// Scanning is always lenient: whether damage fails the stream is the
	// plan's decision under the stream's (possibly degraded) policy, so
	// the ladder can floor resilience mid-stream without re-scanning.
	pics, scanDur, scanErr := scan.ScanUnits(ctx, r, cfg.ChunkSize, true, nil, nil, feed)
	if scanErr != nil {
		st.fail(scanErr)
	}
	st.wgTasks.Wait()
	s.unregister(st)
	st.accountUndelivered()

	stats, derr := sess.Finish(scanErr)
	stats.ScanTime = scanDur
	if scanDur > 0 {
		stats.ScanRate = float64(pics) / scanDur.Seconds()
	}
	st.dmu.Lock()
	ss.Stats = stats
	ss.DeadlineMisses = st.misses
	ss.Latencies = st.lats
	ss.PredictedSlack = st.predHist
	ss.ActualSlack = st.actHist
	ss.SlackShedPictures = st.slackShd
	st.dmu.Unlock()
	s.mu.Lock()
	ss.Paused = st.pausedCount
	s.mu.Unlock()
	return ss, s.streamErr(id, derr)
}
