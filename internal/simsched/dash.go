package simsched

import "time"

// DSMConfig models a cache-coherent machine with physically distributed
// memory (the paper's §7.2 Stanford DASH experiments): processors come in
// clusters sharing a local memory; references that miss to a remote
// cluster pay a latency multiplier.
//
// The paper observed that with no attention to data placement, remote-miss
// latency — not synchronization — limits speedup on DASH. With data
// placed round-robin and tasks assigned dynamically, the fraction of a
// task's misses that are remote grows as 1 − 1/C for C clusters, which is
// how this model inflates task costs.
type DSMConfig struct {
	ClusterSize int // processors per cluster (DASH: 4)
	// RemoteFactor is the fractional slowdown of a task whose misses are
	// all remote (e.g. 0.6 means a fully-remote task runs 1.6× longer).
	RemoteFactor float64
}

// Clusters returns the number of clusters hosting P workers.
func (c DSMConfig) Clusters(workers int) int {
	if c.ClusterSize <= 0 {
		return 1
	}
	n := (workers + c.ClusterSize - 1) / c.ClusterSize
	if n < 1 {
		n = 1
	}
	return n
}

// CostMultiplier returns the task-cost inflation for P workers.
func (c DSMConfig) CostMultiplier(workers int) float64 {
	cl := c.Clusters(workers)
	return 1 + c.RemoteFactor*(1-1/float64(cl))
}

// SimulateSlicesDSM runs the improved slice decoder on the DSM model:
// identical queue semantics, with every slice cost inflated by the
// remote-miss multiplier for this machine size.
func SimulateSlicesDSM(pics []SimPicture, workers int, improved bool, cfg DSMConfig) Result {
	mult := cfg.CostMultiplier(workers)
	inflated := make([]SimPicture, len(pics))
	for i, p := range pics {
		q := p
		q.SliceCosts = make([]time.Duration, len(p.SliceCosts))
		for j, c := range p.SliceCosts {
			q.SliceCosts[j] = time.Duration(float64(c) * mult)
		}
		inflated[i] = q
	}
	return SimulateSlices(inflated, workers, improved)
}

// SimulateGOPDSM runs the GOP decoder on the DSM model. GOP tasks suffer
// less remote traffic than slices (each worker's references stay in its
// own GOP), so the multiplier applies only to the sharing-prone fraction
// of the work given by shareFrac.
func SimulateGOPDSM(tasks []GOPTask, workers int, cfg DSMConfig, shareFrac float64) Result {
	mult := 1 + (cfg.CostMultiplier(workers)-1)*shareFrac
	inflated := make([]GOPTask, len(tasks))
	for i, t := range tasks {
		t.Cost = time.Duration(float64(t.Cost) * mult)
		inflated[i] = t
	}
	return SimulateGOP(inflated, workers)
}

// SimulateGOPDSMQueues runs the GOP decoder on the DSM model with the
// paper's §7.2 remedy: a task queue per cluster, GOP data loaded
// round-robin into cluster memories, each worker preferring tasks whose
// data is local, and stealing remote tasks (paying the remote-miss
// multiplier on the whole task) only when its own queue runs dry.
func SimulateGOPDSMQueues(tasks []GOPTask, workers int, cfg DSMConfig) Result {
	clusters := cfg.Clusters(workers)
	if cfg.ClusterSize <= 0 {
		clusters = 1
	}
	// Per-cluster FIFO of task indices, round-robin placement.
	queues := make([][]int, clusters)
	for i := range tasks {
		c := i % clusters
		queues[c] = append(queues[c], i)
	}
	remoteMult := 1 + cfg.RemoteFactor

	ws := newWorkers(workers)
	var makespan time.Duration
	for {
		// Earliest-free worker takes its next task.
		wi := 0
		for i := 1; i < workers; i++ {
			if ws.free[i] < ws.free[wi] {
				wi = i
			}
		}
		home := wi / max(cfg.ClusterSize, 1)
		if home >= clusters {
			home = clusters - 1
		}
		src := -1
		if len(queues[home]) > 0 {
			src = home
		} else {
			// Steal from the longest remote queue.
			for c := range queues {
				if len(queues[c]) > 0 && (src < 0 || len(queues[c]) > len(queues[src])) {
					src = c
				}
			}
		}
		if src < 0 {
			break // all queues empty
		}
		ti := queues[src][0]
		queues[src] = queues[src][1:]
		cost := tasks[ti].Cost
		if src != home {
			cost = time.Duration(float64(cost) * remoteMult)
		}
		start := ws.free[wi]
		if tasks[ti].Avail > start {
			start = tasks[ti].Avail
		}
		end := start + cost
		ws.free[wi] = end
		ws.busy[wi] += cost
		ws.n[wi]++
		if end > makespan {
			makespan = end
		}
	}
	return ws.result(makespan)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
