package simsched

import (
	"testing"
	"time"
)

func markIntra(pics []SimPicture, pattern string) []SimPicture {
	for i := range pics {
		pics[i].Intra = pattern[i%len(pattern)] == 'I'
	}
	return pics
}

func TestMaxConcurrencyBeatsImproved(t *testing.T) {
	// The paper's "maximum concurrency" scheme: no picture barriers at
	// all, only slice-level data dependencies. It must never be slower
	// than the improved version and should win when barriers hurt most
	// (many workers, few slices).
	pics := markIntra(uniformPics(26, 15, ms(1), "IPBBPBBPBBPBB"), "IPBBPBBPBBPBB")
	for _, w := range []int{4, 8, 14, 20} {
		improved := SimulateSlices(pics, w, true)
		maxc := SimulateSlicesMax(pics, w, 1)
		if maxc.Makespan > improved.Makespan {
			t.Fatalf("%d workers: max-concurrency (%v) slower than improved (%v)",
				w, maxc.Makespan, improved.Makespan)
		}
	}
	improved := SimulateSlices(pics, 20, true)
	maxc := SimulateSlicesMax(pics, 20, 1)
	if float64(improved.Makespan)/float64(maxc.Makespan) < 1.05 {
		t.Fatalf("at 20 workers max-concurrency (%v) should clearly beat improved (%v)",
			maxc.Makespan, improved.Makespan)
	}
}

func TestMaxConcurrencyWorkConserved(t *testing.T) {
	pics := markIntra(uniformPics(13, 8, ms(2), "IPBB"), "IPBB")
	base := SimulateSlices(pics, 1, true)
	var total time.Duration
	for _, b := range base.Busy {
		total += b
	}
	for _, w := range []int{1, 3, 9} {
		r := SimulateSlicesMax(pics, w, 1)
		var sum time.Duration
		for _, b := range r.Busy {
			sum += b
		}
		if sum != total {
			t.Fatalf("%d workers: busy sum %v, want %v", w, sum, total)
		}
		if r.Makespan > total {
			t.Fatalf("%d workers: makespan %v exceeds serial time %v", w, r.Makespan, total)
		}
	}
}

func TestMaxConcurrencyRespectsDependencies(t *testing.T) {
	// Two pictures: I then P, one slice each, one worker's worth of cost.
	// P's slice depends on I's slice, so even with many workers the
	// makespan is the serial sum.
	pics := []SimPicture{
		{Ref: true, Intra: true, DisplayIdx: 0, SliceCosts: []time.Duration{ms(5)}},
		{Ref: true, DisplayIdx: 1, SliceCosts: []time.Duration{ms(5)}},
	}
	r := SimulateSlicesMax(pics, 8, 1)
	if r.Makespan != ms(10) {
		t.Fatalf("makespan %v, want 10ms (dependency must serialize)", r.Makespan)
	}
	// With an unrelated I instead, they run in parallel.
	pics[1].Intra = true
	r = SimulateSlicesMax(pics, 8, 1)
	if r.Makespan != ms(5) {
		t.Fatalf("makespan %v, want 5ms (independent pictures)", r.Makespan)
	}
}

func TestMaxConcurrencyVRange(t *testing.T) {
	// Wider vertical motion reach means more dependencies, never a
	// faster schedule.
	pics := markIntra(uniformPics(26, 15, ms(1), "IPBBPBBPBBPBB"), "IPBBPBBPBBPBB")
	narrow := SimulateSlicesMax(pics, 14, 1)
	wide := SimulateSlicesMax(pics, 14, 4)
	if wide.Makespan < narrow.Makespan {
		t.Fatalf("wider vrange produced a faster schedule: %v < %v", wide.Makespan, narrow.Makespan)
	}
}

func TestDSMQueuesBeatNaive(t *testing.T) {
	// The §7.2 remedy: per-cluster queues with round-robin GOP placement
	// and stealing must beat the no-locality cost model, because most
	// tasks run on their home cluster.
	tasks := uniformGOPs(64, 13, ms(10))
	cfg := DSMConfig{ClusterSize: 4, RemoteFactor: 0.5}
	for _, w := range []int{8, 16, 32} {
		naive := SimulateGOPDSM(tasks, w, cfg, 1.0)
		smart := SimulateGOPDSMQueues(tasks, w, cfg)
		if smart.Makespan >= naive.Makespan {
			t.Fatalf("%d workers: local queues (%v) not faster than naive (%v)",
				w, smart.Makespan, naive.Makespan)
		}
	}
}

func TestDSMQueuesStealingKeepsWorkersBusy(t *testing.T) {
	// Unbalanced placement: all the work lands on cluster 0; stealing
	// must still use every worker.
	tasks := uniformGOPs(32, 13, ms(10))
	cfg := DSMConfig{ClusterSize: 4, RemoteFactor: 0.5}
	r := SimulateGOPDSMQueues(tasks, 8, cfg)
	for wi, n := range r.Tasks {
		if n == 0 {
			t.Fatalf("worker %d got no tasks — stealing broken", wi)
		}
	}
	// Single cluster: no remote penalty, identical to plain simulation.
	plain := SimulateGOP(tasks, 4)
	local := SimulateGOPDSMQueues(tasks, 4, cfg)
	if local.Makespan != plain.Makespan {
		t.Fatalf("one cluster should match SMP: %v vs %v", local.Makespan, plain.Makespan)
	}
}
