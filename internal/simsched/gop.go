package simsched

import (
	"sort"
	"time"
)

// GOPTask is one coarse-grained task for the GOP simulation.
type GOPTask struct {
	Cost     time.Duration
	Avail    time.Duration // when the scan process enqueues it
	Pictures int           // decoded pictures the GOP produces
}

// ScanFeed returns availability times for n GOP tasks scanned at the
// given rate (GOPs per second). Rate <= 0 means everything is available
// immediately (the paper's assumption once the scan runs ahead).
func ScanFeed(n int, gopsPerSecond float64) []time.Duration {
	avail := make([]time.Duration, n)
	if gopsPerSecond <= 0 {
		return avail
	}
	per := time.Duration(float64(time.Second) / gopsPerSecond)
	for i := range avail {
		avail[i] = time.Duration(i+1) * per
	}
	return avail
}

// SimulateGOP runs the GOP-level decoder under P workers: tasks are taken
// in order by the earliest-free worker. Memory follows the paper's
// buffering rules: a GOP's decoded pictures accumulate in the display
// queue (filling linearly over the decode) and can only leave once every
// earlier GOP has fully displayed.
func SimulateGOP(tasks []GOPTask, workers int) Result {
	ws := newWorkers(workers)
	starts := make([]time.Duration, len(tasks))
	ends := make([]time.Duration, len(tasks))
	var makespan time.Duration
	for i, t := range tasks {
		starts[i], ends[i] = ws.run(t.Avail, t.Cost)
		if ends[i] > makespan {
			makespan = ends[i]
		}
	}
	r := ws.result(makespan)
	r.PeakFrames = gopPeakFrames(tasks, starts, ends)
	return r
}

// gopPeakFrames evaluates the frame population at every task boundary.
// GOP g's pictures become displayable at displayable[g] = max(ends[0..g]);
// before that, pictures accumulate: linearly during (start, end), all of
// them afterwards.
func gopPeakFrames(tasks []GOPTask, starts, ends []time.Duration) int {
	if len(tasks) == 0 {
		return 0
	}
	displayable := make([]time.Duration, len(tasks))
	var hi time.Duration
	for g := range tasks {
		if ends[g] > hi {
			hi = ends[g]
		}
		displayable[g] = hi
	}
	var events []time.Duration
	for g := range tasks {
		events = append(events, starts[g], ends[g], displayable[g])
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	peak := 0
	for _, t := range events {
		live := 0.0
		for g, task := range tasks {
			switch {
			case t < starts[g] || task.Cost == 0:
				// not started
			case t > displayable[g]:
				// displayed (at exactly displayable[g] the pictures are
				// still resident, capturing the pre-drain peak)
			case t >= ends[g]:
				live += float64(task.Pictures)
			default:
				frac := float64(t-starts[g]) / float64(task.Cost)
				live += frac * float64(task.Pictures)
			}
		}
		if n := int(live + 0.5); n > peak {
			peak = n
		}
	}
	return peak
}
