package simsched

import (
	"container/heap"
	"time"
)

// SimulateSlicesMax simulates the slice-level decoder with the maximum
// concurrency the dependence structure allows — the scheme the paper
// declined to build because it "would require complex synchronization at
// the slice level" (§5.2). A slice may start as soon as the slices of
// its reference pictures that motion compensation can read (its own row
// ±vrange rows) are complete; there are no picture barriers at all.
//
// pics must be in decode order; refs are resolved like the decoder does
// (fwd = previous reference or the one before, bwd = previous reference
// for B pictures). vrange is the vertical motion reach in slice rows
// (≥1; half-pel vectors of ±(16·vrange−1) pixels stay inside it).
func SimulateSlicesMax(pics []SimPicture, workers, vrange int) Result {
	if vrange < 1 {
		vrange = 1
	}
	type task struct {
		pic, slice int
		cost       time.Duration
	}
	var tasks []task
	taskID := make(map[[2]int]int)
	for k, p := range pics {
		for s, c := range p.SliceCosts {
			taskID[[2]int{k, s}] = len(tasks)
			tasks = append(tasks, task{pic: k, slice: s, cost: c})
		}
	}
	n := len(tasks)

	// Resolve per-picture references (decode-order IPB semantics).
	fwd := make([]int, len(pics))
	bwd := make([]int, len(pics))
	refOld, refNew := -1, -1
	for k, p := range pics {
		fwd[k], bwd[k] = -1, -1
		if p.Ref {
			if refNew >= 0 && !p.Intra {
				fwd[k] = refNew // P picture predicts from the last reference
			}
			refOld, refNew = refNew, k
		} else {
			fwd[k], bwd[k] = refOld, refNew
		}
	}

	// Dependency edges: slice (k,s) waits for ref slices rows s±vrange.
	indeg := make([]int, n)
	dependents := make([][]int, n)
	addDep := func(from, to int) { // from must complete before to
		dependents[from] = append(dependents[from], to)
		indeg[to]++
	}
	for k, p := range pics {
		for s := range p.SliceCosts {
			id := taskID[[2]int{k, s}]
			for _, r := range []int{fwd[k], bwd[k]} {
				if r < 0 {
					continue
				}
				for rs := s - vrange; rs <= s+vrange; rs++ {
					if rs < 0 || rs >= len(pics[r].SliceCosts) {
						continue
					}
					addDep(taskID[[2]int{r, rs}], id)
				}
			}
		}
	}

	// Event-driven list scheduling: ready tasks (all deps complete) are
	// taken in decode order by the earliest-free worker.
	ready := &intHeap{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(ready, i)
		}
	}
	events := &completionHeap{}
	ws := newWorkers(workers)
	wfree := &durHeap{}
	for i := 0; i < workers; i++ {
		heap.Push(wfree, workerSlot{0, i})
	}
	var makespan time.Duration
	now := time.Duration(0)
	scheduled := 0
	for scheduled < n {
		// Start every ready task we have an idle worker for.
		for ready.Len() > 0 && wfree.Len() > 0 && (*wfree)[0].free <= now {
			id := heap.Pop(ready).(int)
			slot := heap.Pop(wfree).(workerSlot)
			start := now
			if slot.free > start {
				start = slot.free
			}
			end := start + tasks[id].cost
			ws.busy[slot.id] += tasks[id].cost
			ws.n[slot.id]++
			heap.Push(wfree, workerSlot{end, slot.id})
			heap.Push(events, completionEv{end, id})
			if end > makespan {
				makespan = end
			}
			scheduled++
		}
		if scheduled >= n {
			break
		}
		if events.Len() == 0 {
			// No work in flight and nothing ready: cyclic dependency
			// (cannot happen with decode-order references). Bail out.
			break
		}
		ev := heap.Pop(events).(completionEv)
		if ev.t > now {
			now = ev.t
		}
		for _, d := range dependents[ev.taskID] {
			indeg[d]--
			if indeg[d] == 0 {
				heap.Push(ready, d)
			}
		}
		// Drain any completions at the same instant.
		for events.Len() > 0 && (*events)[0].t <= now {
			e2 := heap.Pop(events).(completionEv)
			for _, d := range dependents[e2.taskID] {
				indeg[d]--
				if indeg[d] == 0 {
					heap.Push(ready, d)
				}
			}
		}
	}
	r := ws.result(makespan)
	r.PeakFrames = 0 // not modeled for this variant
	return r
}

// --- small heaps -------------------------------------------------------------

type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

type workerSlot struct {
	free time.Duration
	id   int
}

type durHeap []workerSlot

func (h durHeap) Len() int { return len(h) }
func (h durHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h durHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x interface{}) { *h = append(*h, x.(workerSlot)) }
func (h *durHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// completionEv is a scheduled task completion.
type completionEv struct {
	t      time.Duration
	taskID int
}

type completionHeap []completionEv

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].taskID < h[j].taskID
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completionEv)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
