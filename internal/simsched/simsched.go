// Package simsched is a deterministic discrete-event simulator of the
// paper's parallel decoder executions.
//
// The host running this reproduction has a single CPU, so wall-clock
// speedups beyond 1 are unmeasurable — the same reason the paper used the
// TangoLite simulator alongside its SGI Challenge. The simulator executes
// the *real* task structure (GOP queue, or the 2-D picture/slice queue
// with simple/improved barrier semantics) with per-task costs measured
// from the real single-worker decode, under P identical workers. Speedup,
// load balance, synchronization time and memory occupancy depend only on
// task costs and queue structure, which is exactly what is preserved.
package simsched

import "time"

// Result reports one simulated execution.
type Result struct {
	Workers  int
	Makespan time.Duration
	Busy     []time.Duration // per-worker computing time
	Wait     []time.Duration // per-worker idle time (queue + barriers)
	Tasks    []int           // per-worker task count

	// PeakFrames is the maximum number of simultaneously live decoded
	// pictures under the engine's buffering rules (Figure 8's quantity,
	// in pictures; multiply by the frame size for bytes).
	PeakFrames int
}

// MinBusy, MaxBusy and AvgBusy summarize worker compute times (Figure 6).
func (r Result) MinBusy() time.Duration { return minMaxAvg(r.Busy).min }

// MaxBusy returns the maximum per-worker computing time.
func (r Result) MaxBusy() time.Duration { return minMaxAvg(r.Busy).max }

// AvgBusy returns the mean per-worker computing time.
func (r Result) AvgBusy() time.Duration { return minMaxAvg(r.Busy).avg }

// SyncRatio returns the mean of per-worker wait/busy — the quantity
// Figure 12 plots.
func (r Result) SyncRatio() float64 {
	if len(r.Busy) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i := range r.Busy {
		if r.Busy[i] > 0 {
			sum += float64(r.Wait[i]) / float64(r.Busy[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

type mma struct{ min, max, avg time.Duration }

func minMaxAvg(ds []time.Duration) mma {
	if len(ds) == 0 {
		return mma{}
	}
	out := mma{min: ds[0], max: ds[0]}
	var sum time.Duration
	for _, d := range ds {
		if d < out.min {
			out.min = d
		}
		if d > out.max {
			out.max = d
		}
		sum += d
	}
	out.avg = sum / time.Duration(len(ds))
	return out
}

// workerSet is the pool of P identical workers; tasks are handed to the
// earliest-free worker (FCFS queue semantics).
type workerSet struct {
	free []time.Duration
	busy []time.Duration
	n    []int
}

func newWorkers(p int) *workerSet {
	return &workerSet{
		free: make([]time.Duration, p),
		busy: make([]time.Duration, p),
		n:    make([]int, p),
	}
}

// run assigns a task available at avail with the given cost; returns its
// start and end times.
func (w *workerSet) run(avail, cost time.Duration) (start, end time.Duration) {
	wi := 0
	for i := 1; i < len(w.free); i++ {
		if w.free[i] < w.free[wi] {
			wi = i
		}
	}
	start = w.free[wi]
	if avail > start {
		start = avail
	}
	end = start + cost
	w.free[wi] = end
	w.busy[wi] += cost
	w.n[wi]++
	return start, end
}

func (w *workerSet) result(makespan time.Duration) Result {
	r := Result{
		Workers:  len(w.free),
		Makespan: makespan,
		Busy:     append([]time.Duration(nil), w.busy...),
		Tasks:    append([]int(nil), w.n...),
	}
	r.Wait = make([]time.Duration, len(w.free))
	for i := range r.Wait {
		r.Wait[i] = makespan - w.busy[i]
	}
	return r
}
