package simsched

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func uniformGOPs(n, pics int, cost time.Duration) []GOPTask {
	ts := make([]GOPTask, n)
	for i := range ts {
		ts[i] = GOPTask{Cost: cost, Pictures: pics}
	}
	return ts
}

func TestSimulateGOPSingleWorker(t *testing.T) {
	r := SimulateGOP(uniformGOPs(4, 13, ms(10)), 1)
	if r.Makespan != ms(40) {
		t.Fatalf("makespan %v, want 40ms", r.Makespan)
	}
	if r.Busy[0] != ms(40) || r.Wait[0] != 0 {
		t.Fatalf("busy %v wait %v", r.Busy[0], r.Wait[0])
	}
	if r.Tasks[0] != 4 {
		t.Fatalf("tasks %d", r.Tasks[0])
	}
}

func TestSimulateGOPPerfectSpeedup(t *testing.T) {
	// 8 equal GOPs over 4 workers: exactly 2 per worker, speedup 4.
	r1 := SimulateGOP(uniformGOPs(8, 13, ms(10)), 1)
	r4 := SimulateGOP(uniformGOPs(8, 13, ms(10)), 4)
	if got := float64(r1.Makespan) / float64(r4.Makespan); got != 4 {
		t.Fatalf("speedup %f, want 4", got)
	}
}

func TestSimulateGOPTailImbalance(t *testing.T) {
	// 5 equal GOPs over 4 workers: one worker does 2, makespan 2 units.
	r := SimulateGOP(uniformGOPs(5, 4, ms(10)), 4)
	if r.Makespan != ms(20) {
		t.Fatalf("makespan %v", r.Makespan)
	}
	if r.MaxBusy() != ms(20) || r.MinBusy() != ms(10) {
		t.Fatalf("min/max busy %v/%v", r.MinBusy(), r.MaxBusy())
	}
}

func TestSimulateGOPScanFeedLimits(t *testing.T) {
	// If the scan process is slower than decode, workers starve.
	tasks := uniformGOPs(10, 4, ms(10))
	avail := ScanFeed(10, 20) // one GOP every 50ms, decode takes 10ms
	for i := range tasks {
		tasks[i].Avail = avail[i]
	}
	r := SimulateGOP(tasks, 4)
	// Last GOP available at 500ms; decode adds 10ms.
	if r.Makespan != ms(510) {
		t.Fatalf("makespan %v, want 510ms", r.Makespan)
	}
}

func TestGOPMemoryGrowsWithWorkers(t *testing.T) {
	// Figure 8's core claim: GOP-mode peak frames grow with workers.
	tasks := uniformGOPs(32, 13, ms(10))
	p1 := SimulateGOP(tasks, 1).PeakFrames
	p4 := SimulateGOP(tasks, 4).PeakFrames
	p14 := SimulateGOP(tasks, 14).PeakFrames
	if !(p1 < p4 && p4 < p14) {
		t.Fatalf("peaks %d, %d, %d not increasing", p1, p4, p14)
	}
	if p14 < 13*14/2 {
		t.Fatalf("14-worker peak %d implausibly small", p14)
	}
}

func TestGOPMemoryGrowsWithGOPSize(t *testing.T) {
	p4 := SimulateGOP(uniformGOPs(32, 4, ms(10)), 8).PeakFrames
	p31 := SimulateGOP(uniformGOPs(32, 31, ms(80)), 8).PeakFrames
	if p31 < p4*4 {
		t.Fatalf("peak %d (GOP 31) vs %d (GOP 4): growth missing", p31, p4)
	}
}

func uniformPics(n, slices int, cost time.Duration, pattern string) []SimPicture {
	// pattern like "IPBBPBB" in decode order; display indices follow the
	// closed-GOP convention (I=0, refs at their temporal position).
	ps := make([]SimPicture, n)
	disp := displayOrder(pattern, n)
	for i := range ps {
		kind := pattern[i%len(pattern)]
		ps[i] = SimPicture{Ref: kind != 'B', DisplayIdx: disp[i]}
		ps[i].SliceCosts = make([]time.Duration, slices)
		for j := range ps[i].SliceCosts {
			ps[i].SliceCosts[j] = cost
		}
	}
	return ps
}

// displayOrder assigns display indices for an IP(BB) decode-order pattern.
func displayOrder(pattern string, n int) []int {
	out := make([]int, n)
	next := 0
	var pendingRef = -1
	for i := 0; i < n; i++ {
		kind := pattern[i%len(pattern)]
		if kind == 'B' {
			out[i] = next
			next++
		} else {
			if pendingRef >= 0 {
				out[pendingRef] = next
				next++
			}
			pendingRef = i
		}
	}
	if pendingRef >= 0 {
		out[pendingRef] = next
	}
	return out
}

func TestSimulateSlicesSimpleKnee(t *testing.T) {
	// The paper's knee: 15 slices per picture, barrier every picture.
	// With 8 workers each picture takes ceil(15/8)=2 rounds; adding
	// workers up to 14 does not help (still 2 rounds).
	pics := uniformPics(12, 15, ms(1), "IPP")
	m8 := SimulateSlices(pics, 8, false).Makespan
	m14 := SimulateSlices(pics, 14, false).Makespan
	if m8 != m14 {
		t.Fatalf("simple version should plateau: 8w=%v 14w=%v", m8, m14)
	}
	m15 := SimulateSlices(pics, 15, false).Makespan
	if m15 >= m8 {
		t.Fatalf("15 workers (%v) should beat 8 (%v)", m15, m8)
	}
}

func TestSimulateSlicesImprovedBeatsSimple(t *testing.T) {
	pics := uniformPics(26, 15, ms(1), "IPBBPBBPBBPBB")
	for _, w := range []int{4, 8, 14} {
		s := SimulateSlices(pics, w, false)
		im := SimulateSlices(pics, w, true)
		if im.Makespan > s.Makespan {
			t.Fatalf("%d workers: improved (%v) slower than simple (%v)", w, im.Makespan, s.Makespan)
		}
		// With uniform slice costs the two variants can tie when the
		// round counts coincide (45 slices/chunk at 8 workers = 6 rounds
		// either way); at 14 workers the improved version must win.
		if w == 14 && im.Makespan == s.Makespan {
			t.Fatalf("%d workers: improved identical to simple", w)
		}
	}
}

func TestSimulateSlicesSyncRatio(t *testing.T) {
	pics := uniformPics(26, 15, ms(1), "IPBBPBBPBBPBB")
	s := SimulateSlices(pics, 14, false)
	im := SimulateSlices(pics, 14, true)
	if im.SyncRatio() >= s.SyncRatio() {
		t.Fatalf("improved sync ratio %.3f not below simple %.3f", im.SyncRatio(), s.SyncRatio())
	}
}

func TestSimulateSlicesMemoryConstant(t *testing.T) {
	small := uniformPics(13, 15, ms(1), "IPBBPBBPBBPBB")
	big := uniformPics(62, 15, ms(1), "IPBBPBBPBBPBB")
	p1 := SimulateSlices(small, 14, true).PeakFrames
	p2 := SimulateSlices(big, 14, true).PeakFrames
	if p2 > p1+2 {
		t.Fatalf("slice-mode peak grew with stream length: %d -> %d", p1, p2)
	}
	if p1 > 8 {
		t.Fatalf("slice-mode peak %d frames implausibly high", p1)
	}
}

func TestSimulateSlicesSingleWorkerEqualsSum(t *testing.T) {
	pics := uniformPics(13, 15, ms(1), "IPBBPBBPBBPBB")
	r := SimulateSlices(pics, 1, true)
	want := ms(13 * 15)
	if r.Makespan != want || r.Busy[0] != want || r.Wait[0] != 0 {
		t.Fatalf("1-worker: makespan %v busy %v wait %v", r.Makespan, r.Busy[0], r.Wait[0])
	}
}

func TestWorkConservation(t *testing.T) {
	// Total busy time is invariant across worker counts and variants.
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		pics := uniformPics(int(seed%20)+4, int(seed%7)+2, ms(1), "IPBB")
		base := SimulateSlices(pics, 1, false)
		var total time.Duration
		for _, b := range base.Busy {
			total += b
		}
		for _, w := range []int{2, 5, 9} {
			for _, improved := range []bool{false, true} {
				r := SimulateSlices(pics, w, improved)
				var sum time.Duration
				for _, b := range r.Busy {
					sum += b
				}
				if sum != total {
					return false
				}
				if r.Makespan > total || r.Makespan*time.Duration(w) < total {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDSMSlowdown(t *testing.T) {
	cfg := DSMConfig{ClusterSize: 4, RemoteFactor: 0.6}
	if cfg.Clusters(4) != 1 || cfg.Clusters(8) != 2 || cfg.Clusters(32) != 8 {
		t.Fatal("cluster math wrong")
	}
	if cfg.CostMultiplier(4) != 1 {
		t.Fatalf("one cluster must not inflate: %f", cfg.CostMultiplier(4))
	}
	pics := uniformPics(52, 30, ms(1), "IPBBPBBPBBPBB")
	r4 := SimulateSlicesDSM(pics, 4, true, cfg)
	r8 := SimulateSlicesDSM(pics, 8, true, cfg)
	r16 := SimulateSlicesDSM(pics, 16, true, cfg)
	r32 := SimulateSlicesDSM(pics, 32, true, cfg)
	s8 := float64(r4.Makespan) / float64(r8.Makespan)
	s16 := float64(r4.Makespan) / float64(r16.Makespan)
	s32 := float64(r4.Makespan) / float64(r32.Makespan)
	// Paper's §7.2: 1.8, 3.4, 5.2 — we require the shape: sublinear and
	// increasing.
	if !(s8 > 1.2 && s8 < 2 && s16 > s8 && s16 < 4 && s32 > s16 && s32 < 8) {
		t.Fatalf("DSM speedups %.2f %.2f %.2f out of shape", s8, s16, s32)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	pics := uniformPics(26, 15, ms(1), "IPBBPBBPBBPBB")
	a := SimulateSlices(pics, 7, true)
	b := SimulateSlices(pics, 7, true)
	if a.Makespan != b.Makespan || a.PeakFrames != b.PeakFrames {
		t.Fatal("simulation not deterministic")
	}
	for i := range a.Busy {
		if a.Busy[i] != b.Busy[i] {
			t.Fatal("per-worker results not deterministic")
		}
	}
}

func TestResultSummaries(t *testing.T) {
	r := Result{
		Busy: []time.Duration{ms(10), ms(20), ms(30)},
		Wait: []time.Duration{ms(20), ms(10), 0},
	}
	if r.MinBusy() != ms(10) || r.MaxBusy() != ms(30) || r.AvgBusy() != ms(20) {
		t.Fatal("min/max/avg wrong")
	}
	want := (2.0 + 0.5 + 0) / 3
	if got := r.SyncRatio(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sync ratio %f, want %f", got, want)
	}
}
