package simsched

import (
	"sort"
	"time"
)

// SimPicture is one picture of the slice-level simulation, in decode
// order.
type SimPicture struct {
	Ref        bool // I or P (reference) picture
	Intra      bool // I picture (needs no references at all)
	DisplayIdx int
	SliceCosts []time.Duration
}

// SimulateSlices runs the fine-grained decoder under P workers. Slices
// are issued strictly in decode order from the 2-D task queue; picture k
// opens under the variant's rule:
//
//   - simple:   when picture k-1 is complete (barrier after every picture)
//   - improved: when the most recent reference picture before k is
//     complete (barrier only after I/P pictures)
func SimulateSlices(pics []SimPicture, workers int, improved bool) Result {
	ws := newWorkers(workers)
	complete := make([]time.Duration, len(pics))
	firstStart := make([]time.Duration, len(pics))
	var open time.Duration
	lastRef := -1
	var makespan time.Duration
	for k, p := range pics {
		if improved {
			if lastRef >= 0 && complete[lastRef] > open {
				open = complete[lastRef]
			}
		} else if k > 0 && complete[k-1] > open {
			open = complete[k-1]
		}
		var end time.Duration
		for si, cost := range p.SliceCosts {
			s, e := ws.run(open, cost)
			if si == 0 {
				firstStart[k] = s
			}
			if e > end {
				end = e
			}
		}
		complete[k] = end
		if end > makespan {
			makespan = end
		}
		if p.Ref {
			lastRef = k
		}
	}
	r := ws.result(makespan)
	r.PeakFrames = slicePeakFrames(pics, firstStart, complete)
	return r
}

// slicePeakFrames counts live frames over time: a picture's frame is
// allocated when its first slice starts and freed when it has displayed
// (all earlier display indices complete) and no later picture will
// reference it.
func slicePeakFrames(pics []SimPicture, alloc, complete []time.Duration) int {
	n := len(pics)
	if n == 0 {
		return 0
	}
	// displayTime[k]: when picture k can leave the display queue = max
	// completion over pictures with display index <= k's.
	byDisplay := make([]int, n)
	for i := range byDisplay {
		byDisplay[i] = i
	}
	sort.Slice(byDisplay, func(a, b int) bool {
		return pics[byDisplay[a]].DisplayIdx < pics[byDisplay[b]].DisplayIdx
	})
	free := make([]time.Duration, n)
	var hi time.Duration
	for _, k := range byDisplay {
		if complete[k] > hi {
			hi = complete[k]
		}
		free[k] = hi
	}
	// Reference retention: a reference picture stays live until its last
	// dependent completes. Dependents of ref r are every picture between
	// r and the reference-after-next (standard IPB chains); conservatively
	// extend to the completion of any later picture that could reference
	// it: the pictures up to the next-next reference in decode order.
	refIdx := []int{}
	for k, p := range pics {
		if p.Ref {
			refIdx = append(refIdx, k)
		}
	}
	for ri, r := range refIdx {
		lastDep := r
		// Dependents: pictures after r, up to and including the next
		// reference and its trailing B pictures.
		end := n - 1
		if ri+2 < len(refIdx) {
			end = refIdx[ri+2] - 1
		}
		for k := r + 1; k <= end; k++ {
			lastDep = k
		}
		if complete[lastDep] > free[r] {
			free[r] = complete[lastDep]
		}
	}

	type ev struct {
		t     time.Duration
		delta int
	}
	var events []ev
	for k := 0; k < n; k++ {
		events = append(events, ev{alloc[k], 1}, ev{free[k] + 1, -1})
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	live, peak := 0, 0
	for _, e := range events {
		live += e.delta
		if live > peak {
			peak = live
		}
	}
	return peak
}
