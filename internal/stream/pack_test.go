package stream_test

import (
	"bytes"
	"context"
	"testing"

	"mpeg2par/internal/core"
	"mpeg2par/internal/stream"
)

// TestStreamingPackingMatchesBatch extends the ordering-invariance
// contract to the pipelined path: every packing discipline, streamed
// chunk by chunk, must reproduce the batch sequential reference
// bit-exactly. The plan-path pack seed is keyed by plan index, so the
// streaming and batch decodes shuffle identically.
func TestStreamingPackingMatchesBatch(t *testing.T) {
	data := testStream(t, 96, 64, 12, 4)
	var refSink collectSink
	_, refErr := core.Decode(data, core.Options{
		Mode: core.ModeSequential, Workers: 1, Sink: refSink.add,
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	packings := []struct {
		name    string
		packing core.Packing
		seed    int64
	}{
		{"lpt", core.PackLPT, 0},
		{"reverse", core.PackReverse, 0},
		{"random-5", core.PackRandom, 5},
	}
	for _, mode := range []core.Mode{core.ModeGOP, core.ModeSliceImproved} {
		for _, pk := range packings {
			var sink collectSink
			st, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
				Options: core.Options{
					Mode: mode, Workers: 3, Sink: sink.add,
					Packing: pk.packing, PackSeed: pk.seed,
				},
				ChunkSize: 997,
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, pk.name, err)
			}
			if len(sink.frames) != len(refSink.frames) {
				t.Fatalf("%v/%s: %d frames, batch %d", mode, pk.name, len(sink.frames), len(refSink.frames))
			}
			for i := range refSink.frames {
				if !sink.frames[i].Equal(refSink.frames[i]) {
					t.Fatalf("%v/%s: frame %d differs from batch sequential", mode, pk.name, i)
				}
			}
			if st.LeakedFrameBytes != 0 {
				t.Fatalf("%v/%s: leaked %d frame bytes", mode, pk.name, st.LeakedFrameBytes)
			}
		}
	}
}

// TestStreamingAutoTune checks ModeAuto on the pipelined path: the mode
// resolves at the first fed group, the decode matches the sequential
// reference bit-exactly, and Stats.Auto reports the decision and the
// online tuner's outcome.
func TestStreamingAutoTune(t *testing.T) {
	data := testStream(t, 96, 64, 24, 4)
	var refSink collectSink
	_, err := core.Decode(data, core.Options{
		Mode: core.ModeSequential, Workers: 1, Sink: refSink.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		var sink collectSink
		st, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
			Options:   core.Options{Mode: core.ModeAuto, Workers: workers, Sink: sink.add},
			ChunkSize: 997,
		})
		if err != nil {
			t.Fatalf("auto/%d: %v", workers, err)
		}
		if st.Auto == nil {
			t.Fatalf("auto/%d: Stats.Auto not reported", workers)
		}
		if st.Mode == core.ModeAuto {
			t.Fatalf("auto/%d: Stats.Mode still ModeAuto, want the resolved mode", workers)
		}
		if st.Auto.Workers < 1 || st.Auto.Workers > workers {
			t.Fatalf("auto/%d: chose %d workers outside [1,%d]", workers, st.Auto.Workers, workers)
		}
		if st.Auto.FinalWorkerLimit < 1 || st.Auto.FinalWorkerLimit > st.Auto.Workers {
			t.Fatalf("auto/%d: final worker limit %d outside [1,%d]",
				workers, st.Auto.FinalWorkerLimit, st.Auto.Workers)
		}
		if len(sink.frames) != len(refSink.frames) {
			t.Fatalf("auto/%d: %d frames, batch %d", workers, len(sink.frames), len(refSink.frames))
		}
		for i := range refSink.frames {
			if !sink.frames[i].Equal(refSink.frames[i]) {
				t.Fatalf("auto/%d: frame %d differs from batch sequential", workers, i)
			}
		}
	}
}

// TestScanReaderSliceBytes pins the incremental scanner's Bytes field:
// identical to the batch scan (covered structurally by the DeepEqual
// tests) and self-consistent with each slice's offset span at every
// chunk size, including single-byte reads that straddle every startcode.
func TestScanReaderSliceBytes(t *testing.T) {
	data := testStream(t, 48, 32, 4, 2)
	for _, chunk := range []int{1, 7, 4096} {
		m, err := stream.ScanReader(bytes.NewReader(data), chunk, false)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		checked := 0
		for g := range m.GOPs {
			for pi := range m.GOPs[g].Pictures {
				for si, s := range m.GOPs[g].Pictures[pi].Slices {
					if s.Bytes != s.End-s.Offset || s.Bytes <= 0 {
						t.Fatalf("chunk %d: GOP %d pic %d slice %d: Bytes=%d, span=%d",
							chunk, g, pi, si, s.Bytes, s.End-s.Offset)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatalf("chunk %d: no slices checked", chunk)
		}
	}
}
