// Package stream decodes an MPEG-2 elementary stream incrementally from
// an io.Reader: the scan process discovers structure chunk by chunk and
// feeds groups of pictures to the worker pool as soon as they close,
// instead of after a full-stream scan. Memory stays bounded by the
// scan-ahead window (plus one group of pictures), never by stream
// length, and output is bit-identical to the batch decoder for every
// mode and resilience policy — both sides drive the same incremental
// scan state machine and plan builder.
package stream

import (
	"context"
	"fmt"
	"io"
	"time"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/core"
	"mpeg2par/internal/obs"
)

// DefaultChunkSize is the read granularity when Options.ChunkSize is
// zero.
const DefaultChunkSize = 64 << 10

// Options configures a streaming decode. The embedded core options
// select mode, workers, resilience, sink, and the scan-ahead window
// (MaxInFlight).
type Options struct {
	core.Options

	// ChunkSize is the read granularity over the source reader; zero
	// selects DefaultChunkSize. Small chunks exercise more startcode
	// boundary splits, large chunks amortize read overhead.
	ChunkSize int
}

// windowScanner slides a bounded byte window over a reader and drives
// the incremental scan state machine across it. The window keeps, at
// most, the open group of pictures plus the unscanned tail — the floor
// ScanState.KeepFrom reports.
type windowScanner struct {
	r     io.Reader
	chunk int
	ss    *core.ScanState
	buf   []byte
	base  int         // absolute stream offset of buf[0]
	gauge func(int64) // in-flight byte accounting hook, may be nil
}

// bytes returns the window's view of absolute range [from, to).
func (w *windowScanner) bytes(from, to int) []byte {
	return w.buf[from-w.base : to-w.base]
}

// run reads the stream to EOF, stepping the scan state machine over
// every startcode. A startcode is processed only once ScanAheadBytes of
// lookahead are buffered (or the stream ended), which makes every
// header parse see the same bytes the batch scan would — the
// equivalence the chunk-boundary tests pin down. Returns the total
// stream length.
func (w *windowScanner) run(ctx context.Context, note func(int)) (int, error) {
	searchFrom := 0 // absolute offset scanning resumes from
	for {
		if err := ctx.Err(); err != nil {
			return w.base + len(w.buf), err
		}
		// Slide the window: bytes below the scan state's floor (open
		// group, pending sequence header, scan position) are done.
		if keep := w.ss.KeepFrom(searchFrom); keep > w.base {
			n := copy(w.buf, w.buf[keep-w.base:])
			w.buf = w.buf[:n]
			if w.gauge != nil {
				w.gauge(int64(-(keep - w.base)))
			}
			w.base = keep
		}
		// Read one chunk, growing the window only when the open group
		// outruns the current capacity.
		if cap(w.buf)-len(w.buf) < w.chunk {
			nb := make([]byte, len(w.buf), 2*len(w.buf)+w.chunk)
			copy(nb, w.buf)
			w.buf = nb
		}
		n, rerr := w.r.Read(w.buf[len(w.buf) : len(w.buf)+w.chunk])
		w.buf = w.buf[:len(w.buf)+n]
		if n > 0 && w.gauge != nil {
			w.gauge(int64(n))
		}
		eof := rerr == io.EOF
		if rerr != nil && !eof {
			return w.base + len(w.buf), fmt.Errorf("stream: read at %d: %w", w.base+len(w.buf), rerr)
		}
		end := w.base + len(w.buf)
		for {
			i := bits.FindStartCode(w.buf, searchFrom-w.base)
			if i < 0 {
				// No full startcode in the window; a prefix may still
				// straddle the boundary, so resume over the last 3 bytes.
				if f := end - 3; f > searchFrom {
					searchFrom = f
				}
				break
			}
			abs := w.base + i
			if !eof && end-abs < core.ScanAheadBytes {
				searchFrom = abs // revisit once the lookahead is buffered
				break
			}
			if err := w.ss.Step(w.buf, w.base, abs); err != nil {
				return end, err
			}
			if note != nil {
				note(w.ss.Pictures())
			}
			searchFrom = abs + 4
		}
		if eof {
			return end, nil
		}
	}
}

// rebaseGOP deep-copies a group range with every offset rebased so the
// group's first byte is offset Offset-delta (the unit buffer origin).
func rebaseGOP(gr *core.GOPRange, delta int) core.GOPRange {
	out := *gr
	out.Offset -= delta
	out.End -= delta
	out.Pictures = make([]core.PictureRange, len(gr.Pictures))
	for i := range gr.Pictures {
		p := gr.Pictures[i]
		p.Offset -= delta
		p.End -= delta
		p.Slices = append([]core.SliceRange(nil), p.Slices...)
		for j := range p.Slices {
			p.Slices[j].Offset -= delta
			p.Slices[j].End -= delta
		}
		out.Pictures[i] = p
	}
	return out
}

// ScanUnits drives the incremental scan over r in chunkSize-byte reads,
// invoking feed with each closed group of pictures as a self-contained
// core.Unit: an owned copy of the group's bytes with the scanned range
// rebased to it, exactly the units stream.Decode feeds its executor. A
// feed error aborts the scan and is returned. gauge (may be nil)
// receives in-flight window byte deltas; note (may be nil) is called
// with the running picture count after every scan step. Returns the
// pictures scanned and the scan-side wall time.
//
// This is the scan front half of the streaming pipeline with the decode
// back half factored out — the multi-stream service uses it to feed
// per-stream sessions whose tasks a shared pool executes.
func ScanUnits(ctx context.Context, r io.Reader, chunkSize int, lenient bool, gauge func(int64), note func(int), feed func(core.Unit) error) (int, time.Duration, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	ss := core.NewScanState(lenient)
	w := &windowScanner{r: r, chunk: chunkSize, ss: ss, gauge: gauge}
	ss.OnGOP = func(g int, gr *core.GOPRange) error {
		// Copy the group out of the window so the window can slide on;
		// the unit owns its bytes until its last picture completes.
		data := append([]byte(nil), w.bytes(gr.Offset, gr.End)...)
		return feed(core.Unit{
			G:     g,
			Base:  gr.Offset,
			Data:  data,
			Range: rebaseGOP(gr, gr.Offset),
			Seq:   *ss.Seq(),
		})
	}
	scanStart := time.Now()
	total, err := w.run(ctx, note)
	if err == nil {
		_, err = ss.Finish(total)
	}
	return ss.Pictures(), time.Since(scanStart), err
}

// Decode runs the full streaming pipeline over r: incremental scan,
// parallel decode in the configured mode, in-order display through the
// sink. It blocks until the stream is exhausted and every picture
// displayed, or until ctx is cancelled — cancellation tears down scan,
// workers, and display without leaking goroutines or frame memory.
//
// Unlike the batch API, the returned Stats are non-nil even alongside
// an error, carrying the teardown gauges (notably LeakedFrameBytes).
func Decode(ctx context.Context, r io.Reader, opt Options) (*core.Stats, error) {
	exec, err := core.NewStreamExecutor(ctx, opt.Options)
	if err != nil {
		return &core.Stats{Mode: opt.Mode, Workers: opt.EffectiveWorkers()}, err
	}
	lastScan := time.Now()
	pics, scanDur, scanErr := ScanUnits(ctx, r, opt.ChunkSize, opt.Resilience != core.FailFast,
		exec.AdjustBuffered, exec.NoteScanned,
		func(u core.Unit) error {
			// The scan lane's span for this group covers reading + scanning
			// since the previous group closed; Feed's backpressure block is
			// recorded separately (KindFeed) so the two never double-count.
			opt.Obs.Record(obs.KindScan, obs.LaneScan, lastScan, time.Since(lastScan), u.G, -1, -1)
			err := exec.Feed(u)
			lastScan = time.Now()
			return err
		})

	st, err := exec.Finish(scanErr)
	st.ScanTime = scanDur
	if scanDur > 0 {
		st.ScanRate = float64(pics) / scanDur.Seconds()
	}
	return st, err
}

// ScanReader runs only the scan process over r in chunkSize-byte reads
// and returns the stream map. For any chunk size it is identical —
// field for field, offset for offset — to core.Scan (strict) or
// core.ScanLenient over the same bytes, except for ScanTime.
func ScanReader(r io.Reader, chunkSize int, lenient bool) (*core.StreamMap, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	start := time.Now()
	ss := core.NewScanState(lenient)
	w := &windowScanner{r: r, chunk: chunkSize, ss: ss}
	total, err := w.run(context.Background(), nil)
	if err != nil {
		return nil, err
	}
	m, err := ss.Finish(total)
	if err != nil {
		return nil, err
	}
	m.ScanTime = time.Since(start)
	return m, nil
}
