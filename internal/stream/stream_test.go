package stream_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpeg2par/internal/core"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/stream"
)

var streamCache sync.Map

type streamKey struct{ w, h, pics, gop int }

func testStream(t testing.TB, w, h, pics, gop int) []byte {
	t.Helper()
	key := streamKey{w, h, pics, gop}
	if v, ok := streamCache.Load(key); ok {
		return v.([]byte)
	}
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: w, Height: h, Pictures: pics, GOPSize: gop,
		RepeatSequenceHeader: true,
	}, frame.NewSynth(w, h))
	if err != nil {
		t.Fatal(err)
	}
	streamCache.Store(key, res.Data)
	return res.Data
}

// segReader yields the stream split at fixed offsets: each Read returns
// at most the remainder of the current segment, forcing the window
// scanner to see exactly the chosen boundaries.
type segReader struct {
	data []byte
	cuts []int // ascending split offsets
	pos  int
}

func (r *segReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	end := len(r.data)
	for _, c := range r.cuts {
		if c > r.pos && c < end {
			end = c
		}
	}
	n := copy(p, r.data[r.pos:end])
	r.pos += n
	return n, nil
}

func mustBatchScan(t *testing.T, data []byte, lenient bool) *core.StreamMap {
	t.Helper()
	scan := core.Scan
	if lenient {
		scan = core.ScanLenient
	}
	m, err := scan(data)
	if err != nil {
		t.Fatal(err)
	}
	m.ScanTime = 0
	return m
}

func TestScanReaderMatchesBatchAcrossChunkSizes(t *testing.T) {
	data := testStream(t, 80, 48, 12, 4)
	want := mustBatchScan(t, data, false)
	for _, chunk := range []int{1, 2, 3, 4, 5, 7, 13, 31, 64, 257, 4096, 1 << 20} {
		got, err := stream.ScanReader(bytes.NewReader(data), chunk, false)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		got.ScanTime = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: stream map differs from batch scan", chunk)
		}
	}
}

// TestScanBoundaryStraddle splits the stream at every single byte
// offset — covering every possible startcode straddle, including the
// 0x00|0x00 0x01, 0x00 0x00|0x01, and 0x00 0x00 0x01|code cuts — and
// demands the identical map each time.
func TestScanBoundaryStraddle(t *testing.T) {
	data := testStream(t, 48, 32, 4, 2)
	want := mustBatchScan(t, data, false)
	for k := 1; k < len(data); k++ {
		got, err := stream.ScanReader(&segReader{data: data, cuts: []int{k}}, len(data), false)
		if err != nil {
			t.Fatalf("split at %d: %v", k, err)
		}
		got.ScanTime = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("split at %d: stream map differs from batch scan", k)
		}
	}
}

func FuzzStreamScan(f *testing.F) {
	data := testStream(f, 48, 32, 4, 2)
	f.Add(data, 7)
	f.Add(data[:len(data)/2], 3)
	f.Add(data[5:], 64)
	mut := append([]byte(nil), data...)
	for i := 13; i < len(mut); i += 97 {
		mut[i] ^= 0x41
	}
	f.Add(mut, 11)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		c := chunk % 977
		if c < 1 {
			c = 1 - c
		}
		want, wantErr := core.ScanLenient(data)
		got, gotErr := stream.ScanReader(bytes.NewReader(data), c, true)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("chunk %d: stream err=%v, batch err=%v", c, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		got.ScanTime, want.ScanTime = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: stream map differs from batch scan", c)
		}
	})
}

type collectSink struct {
	mu     sync.Mutex
	frames []*frame.Frame
}

func (c *collectSink) add(f *frame.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f.Clone())
	c.mu.Unlock()
}

var allModes = []core.Mode{core.ModeSequential, core.ModeGOP, core.ModeSliceSimple, core.ModeSliceImproved}

var allPolicies = []core.Resilience{core.FailFast, core.ConcealSlice, core.ConcealPicture, core.DropGOP}

// TestStreamingMatchesBatchGolden is the pipeline's bit-identity
// contract: every mode × policy, streamed chunk by chunk through an
// io.Reader, must produce the frames and error accounting of the batch
// sequential reference — on clean and on damaged streams.
func TestStreamingMatchesBatchGolden(t *testing.T) {
	clean := testStream(t, 96, 64, 12, 4)
	inputs := [][]byte{clean}
	for _, spec := range []string{"burst:count=2,len=24", "droppic:1"} {
		sp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		mut, _ := sp.Apply(clean, 2)
		inputs = append(inputs, mut)
	}
	for di, data := range inputs {
		for _, policy := range allPolicies {
			if policy == core.FailFast && di != 0 {
				continue // damaged streams are for the resilient policies
			}
			var refSink collectSink
			refSt, refErr := core.Decode(data, core.Options{
				Mode: core.ModeSequential, Workers: 1, Resilience: policy, Sink: refSink.add,
			})
			for _, mode := range allModes {
				for _, chunk := range []int{997, 64 << 10} {
					if refErr != nil {
						// Damage the policy cannot absorb: streaming must
						// fail wherever batch fails.
						_, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
							Options:   core.Options{Mode: mode, Workers: 3, Resilience: policy},
							ChunkSize: chunk,
						})
						if err == nil {
							t.Fatalf("input %d %v %v chunk %d: decoded cleanly where batch failed (%v)",
								di, policy, mode, chunk, refErr)
						}
						continue
					}
					var sink collectSink
					st, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
						Options: core.Options{
							Mode: mode, Workers: 3, Resilience: policy, Sink: sink.add,
						},
						ChunkSize: chunk,
					})
					if err != nil {
						t.Fatalf("input %d %v %v chunk %d: %v", di, policy, mode, chunk, err)
					}
					if st.Pictures != refSt.Pictures || st.Displayed != refSt.Displayed {
						t.Fatalf("input %d %v %v chunk %d: %d/%d pictures displayed, batch %d/%d",
							di, policy, mode, chunk, st.Displayed, st.Pictures, refSt.Displayed, refSt.Pictures)
					}
					if st.Errors != refSt.Errors {
						t.Fatalf("input %d %v %v chunk %d: error stats %+v, batch %+v",
							di, policy, mode, chunk, st.Errors, refSt.Errors)
					}
					if len(sink.frames) != len(refSink.frames) {
						t.Fatalf("input %d %v %v chunk %d: %d frames, batch %d",
							di, policy, mode, chunk, len(sink.frames), len(refSink.frames))
					}
					for i := range refSink.frames {
						if !sink.frames[i].Equal(refSink.frames[i]) {
							t.Fatalf("input %d %v %v chunk %d: frame %d differs from batch",
								di, policy, mode, chunk, i)
						}
					}
					if st.LeakedFrameBytes != 0 {
						t.Fatalf("input %d %v %v chunk %d: leaked %d frame bytes",
							di, policy, mode, chunk, st.LeakedFrameBytes)
					}
				}
			}
		}
	}
}

// TestPeakInFlightBounded is the memory acceptance: decoding an N-GOP
// stream through a reader must hold buffered bitstream bytes to the
// scan-ahead window plus one group, never the stream length.
func TestPeakInFlightBounded(t *testing.T) {
	data := testStream(t, 80, 48, 96, 4)
	m := mustBatchScan(t, data, false)
	maxGOP := 0
	for _, g := range m.GOPs {
		if n := g.End - g.Offset; n > maxGOP {
			maxGOP = n
		}
	}
	const chunk = 1024
	const maxInFlight = 2
	var sink collectSink
	st, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
		Options: core.Options{
			Mode: core.ModeGOP, Workers: 2, MaxInFlight: maxInFlight, Sink: sink.add,
		},
		ChunkSize: chunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Displayed != m.TotalPictures {
		t.Fatalf("displayed %d of %d", st.Displayed, m.TotalPictures)
	}
	if st.PeakInFlightBytes <= 0 {
		t.Fatal("PeakInFlightBytes not recorded")
	}
	// Window slots can each pin a GOP-sized unit; the scan window holds
	// at most the open GOP plus scan-ahead and read slack.
	bound := int64((maxInFlight+2)*maxGOP + 4*chunk + core.ScanAheadBytes)
	if st.PeakInFlightBytes > bound {
		t.Fatalf("peak in-flight %d exceeds bound %d (max GOP %d)", st.PeakInFlightBytes, bound, maxGOP)
	}
	if bound >= int64(len(data)) {
		t.Fatalf("vacuous bound: stream %d bytes <= bound %d; enlarge the test stream", len(data), bound)
	}
}

// TestScanLeadGauge pins the scan-lead gauge: with the display held
// back, the scan process must run ahead by more than one group.
func TestScanLeadGauge(t *testing.T) {
	data := testStream(t, 80, 48, 12, 4)
	first := true
	sink := func(f *frame.Frame) {
		if first {
			first = false
			time.Sleep(30 * time.Millisecond)
		}
	}
	st, err := stream.Decode(context.Background(), bytes.NewReader(data), stream.Options{
		Options: core.Options{Mode: core.ModeGOP, Workers: 2, MaxInFlight: 4, Sink: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ScanLeadPeak < 8 {
		t.Fatalf("scan-lead peak %d; want the scanner at least two GOPs ahead of display", st.ScanLeadPeak)
	}
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (workers and display must not outlive Decode).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running (baseline %d)\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancellation cancels mid-decode at several injection points in
// every mode and asserts clean teardown: context error surfaced, no
// goroutine leaks, no frame-pool buffer loss.
func TestCancellation(t *testing.T) {
	data := testStream(t, 64, 48, 12, 4)
	cancelled := 0
	for _, mode := range allModes {
		for _, after := range []int{0, 1, 3} {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			shown := 0
			sink := func(f *frame.Frame) {
				shown++
				if shown == after {
					cancel()
				}
			}
			if after == 0 {
				cancel() // cancelled before the first byte
			}
			st, err := stream.Decode(ctx, bytes.NewReader(data), stream.Options{
				Options: core.Options{
					Mode: mode, Workers: 3, MaxInFlight: 1,
					Resilience: core.ConcealSlice, Sink: sink,
				},
				ChunkSize: 512,
			})
			cancel()
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%v after=%d: error %v, want context.Canceled", mode, after, err)
				}
				cancelled++
			} else if st.Displayed != st.Pictures {
				t.Fatalf("%v after=%d: clean run displayed %d of %d", mode, after, st.Displayed, st.Pictures)
			}
			if st == nil {
				t.Fatalf("%v after=%d: nil stats", mode, after)
			}
			if st.LeakedFrameBytes != 0 {
				t.Fatalf("%v after=%d: leaked %d frame bytes", mode, after, st.LeakedFrameBytes)
			}
			waitGoroutines(t, base)
		}
	}
	if cancelled < len(allModes) {
		t.Fatalf("only %d runs actually cancelled; injection points too late", cancelled)
	}
}

// TestDeadline exercises context.WithTimeout through the same teardown
// path (the cmd-level -timeout flag rides on this).
func TestDeadline(t *testing.T) {
	data := testStream(t, 64, 48, 12, 4)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	st, err := stream.Decode(ctx, bytes.NewReader(data), stream.Options{
		Options: core.Options{Mode: core.ModeSliceImproved, Workers: 2},
	})
	if err == nil {
		t.Fatal("expired deadline must fail the decode")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if st.LeakedFrameBytes != 0 {
		t.Fatalf("leaked %d frame bytes", st.LeakedFrameBytes)
	}
	waitGoroutines(t, base)
}

// TestFailFastErrorTeardown: a decode error (not cancellation) must
// also tear down without leaking goroutines or frames.
func TestFailFastErrorTeardown(t *testing.T) {
	data := append([]byte(nil), testStream(t, 64, 48, 12, 4)...)
	sp, err := faults.Parse("truncate:0.6")
	if err != nil {
		t.Fatal(err)
	}
	mut, _ := sp.Apply(data, 1)
	for _, mode := range allModes {
		base := runtime.NumGoroutine()
		st, err := stream.Decode(context.Background(), bytes.NewReader(mut), stream.Options{
			Options: core.Options{Mode: mode, Workers: 2, Resilience: core.FailFast},
		})
		if err == nil {
			t.Fatalf("%v: truncated stream decoded cleanly under FailFast", mode)
		}
		if st.LeakedFrameBytes != 0 {
			t.Fatalf("%v: leaked %d frame bytes", mode, st.LeakedFrameBytes)
		}
		waitGoroutines(t, base)
	}
}
