// Package vbv models the Video Buffering Verifier of ISO/IEC 13818-2
// Annex C: a hypothetical decoder buffer filled at the channel rate and
// drained by whole coded pictures at the display rate. A conforming
// constant-bitrate stream never underflows (a picture's bits must have
// arrived by its decode time) nor overflows the buffer.
//
// The paper fixes its streams at 5–7 Mb/s and notes bitrate barely moves
// the parallel results; this model is how a stream's claimed rate is
// actually checked.
package vbv

import (
	"fmt"
	"time"
)

// Config describes the channel and buffer.
type Config struct {
	BitRate    float64 // channel rate, bits/second
	BufferBits int     // VBV buffer size in bits (vbv_buffer_size × 16384)
	PictureHz  float64 // picture decode rate (frame rate)
	// InitialDelay is the startup delay before the first picture is
	// removed; 0 means "fill to the first picture's needs plus half the
	// buffer", a common encoder choice.
	InitialDelay time.Duration
}

// Result reports a verification run.
type Result struct {
	Conforms   bool
	Underflows int     // pictures whose bits had not arrived in time
	Overflows  int     // instants the buffer exceeded its size
	MinBits    float64 // minimum occupancy observed (before any clamp)
	MaxBits    float64
	Occupancy  []float64 // occupancy just before each picture's removal
}

// Verify runs the model over per-picture coded sizes (decode order).
func Verify(cfg Config, pictureBits []int) (Result, error) {
	var res Result
	if cfg.BitRate <= 0 || cfg.PictureHz <= 0 || cfg.BufferBits <= 0 {
		return res, fmt.Errorf("vbv: need positive rate, picture rate and buffer")
	}
	if len(pictureBits) == 0 {
		return res, fmt.Errorf("vbv: no pictures")
	}
	perPicture := cfg.BitRate / cfg.PictureHz

	// Startup: bits accumulated before the first removal.
	occ := float64(cfg.BufferBits) / 2
	if cfg.InitialDelay > 0 {
		occ = cfg.BitRate * cfg.InitialDelay.Seconds()
	}
	if occ > float64(cfg.BufferBits) {
		occ = float64(cfg.BufferBits)
	}
	res.MinBits = occ
	res.MaxBits = occ
	res.Conforms = true
	for _, bits := range pictureBits {
		res.Occupancy = append(res.Occupancy, occ)
		occ -= float64(bits)
		if occ < res.MinBits {
			res.MinBits = occ
		}
		if occ < 0 {
			res.Underflows++
			res.Conforms = false
			occ = 0 // the model decoder stalls until the bits arrive
		}
		occ += perPicture
		if occ > res.MaxBits {
			res.MaxBits = occ
		}
		if occ > float64(cfg.BufferBits) {
			// CBR channels cannot stop sending: overflow is a stream
			// error (VBR channels simply pause — treat as clamp).
			res.Overflows++
			occ = float64(cfg.BufferBits)
		}
	}
	if res.Overflows > 0 {
		res.Conforms = false
	}
	return res, nil
}
