package vbv

import (
	"testing"
	"time"

	"mpeg2par/internal/encoder"
	"mpeg2par/internal/frame"
)

func TestVerifyValidation(t *testing.T) {
	if _, err := Verify(Config{}, []int{1}); err == nil {
		t.Fatal("zero config must fail")
	}
	if _, err := Verify(Config{BitRate: 1e6, BufferBits: 1 << 20, PictureHz: 30}, nil); err == nil {
		t.Fatal("no pictures must fail")
	}
}

func TestSteadyStateConforms(t *testing.T) {
	// Pictures exactly at the per-picture budget: occupancy is flat.
	cfg := Config{BitRate: 3_000_000, BufferBits: 1 << 21, PictureHz: 30}
	bits := make([]int, 60)
	for i := range bits {
		bits[i] = 100_000 // 3M/30
	}
	res, err := Verify(cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conforms || res.Underflows != 0 || res.Overflows != 0 {
		t.Fatalf("steady state should conform: %+v", res)
	}
	if res.MaxBits-res.MinBits > 100_001 {
		t.Fatalf("occupancy should be near-flat: min %f max %f", res.MinBits, res.MaxBits)
	}
}

func TestUnderflowDetected(t *testing.T) {
	cfg := Config{BitRate: 1_000_000, BufferBits: 1 << 20, PictureHz: 30, InitialDelay: 10 * time.Millisecond}
	// One picture needs far more bits than could have arrived.
	res, err := Verify(cfg, []int{5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conforms || res.Underflows != 1 {
		t.Fatalf("expected underflow: %+v", res)
	}
}

func TestOverflowDetected(t *testing.T) {
	// Tiny pictures at a high channel rate: the buffer fills and
	// overflows on a CBR channel.
	cfg := Config{BitRate: 10_000_000, BufferBits: 1 << 18, PictureHz: 30}
	bits := make([]int, 90)
	for i := range bits {
		bits[i] = 100
	}
	res, err := Verify(cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conforms || res.Overflows == 0 {
		t.Fatalf("expected overflow: %+v", res)
	}
}

// TestEncoderStreamsRoughlyConform: the rate-controlled encoder should
// produce streams whose VBV excursions stay within a generous buffer at
// the configured rate (our controller is crude, so the bound is loose:
// no underflows at 4x the nominal buffer).
func TestEncoderStreamsRoughlyConform(t *testing.T) {
	target := 1_000_000
	res, err := encoder.EncodeSequence(encoder.Config{
		Width: 176, Height: 120, Pictures: 39, GOPSize: 13,
		BitRate: target, FrameRate: 30,
	}, frame.NewSynth(176, 120))
	if err != nil {
		t.Fatal(err)
	}
	var bits []int
	for _, p := range res.Pictures {
		bits = append(bits, p.Bits)
	}
	achieved := res.BitsPerSecond(30)
	v, err := Verify(Config{BitRate: achieved, BufferBits: 4 * 1835008, PictureHz: 30}, bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Underflows > 0 {
		t.Fatalf("encoder stream underflows a 4x main-level buffer at its own rate: %+v", v)
	}
}
