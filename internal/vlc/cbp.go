package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// Table B-9: coded_block_pattern, indexed by cbp value 0..63. cbp 0 is the
// MPEG-2-only 9-bit code (never legal in 4:2:0, where pattern implies at
// least one coded block).
var cbpCodes = [64]Code{
	{0x01, 9}, {0x0b, 5}, {0x09, 5}, {0x0d, 6}, {0x0d, 4}, {0x17, 7}, {0x13, 7}, {0x1f, 8},
	{0x0c, 4}, {0x16, 7}, {0x12, 7}, {0x1e, 8}, {0x13, 5}, {0x1b, 8}, {0x17, 8}, {0x13, 8},
	{0x0b, 4}, {0x15, 7}, {0x11, 7}, {0x1d, 8}, {0x11, 5}, {0x19, 8}, {0x15, 8}, {0x11, 8},
	{0x0f, 6}, {0x0f, 8}, {0x0d, 8}, {0x03, 9}, {0x0f, 5}, {0x0b, 8}, {0x07, 8}, {0x07, 9},
	{0x0a, 4}, {0x14, 7}, {0x10, 7}, {0x1c, 8}, {0x0e, 6}, {0x0e, 8}, {0x0c, 8}, {0x02, 9},
	{0x10, 5}, {0x18, 8}, {0x14, 8}, {0x10, 8}, {0x0e, 5}, {0x0a, 8}, {0x06, 8}, {0x06, 9},
	{0x12, 5}, {0x1a, 8}, {0x16, 8}, {0x12, 8}, {0x0d, 5}, {0x09, 8}, {0x05, 8}, {0x05, 9},
	{0x0c, 5}, {0x08, 8}, {0x04, 8}, {0x04, 9}, {0x07, 3}, {0x0a, 5}, {0x08, 5}, {0x0c, 6},
}

var cbpTable = buildTable("coded_block_pattern", func() []entry {
	es := make([]entry, 64)
	for v := range cbpCodes {
		es[v] = entry{cbpCodes[v], int32(v)}
	}
	return es
}())

// EncodeCBP writes a coded_block_pattern value (0..63). Bit 5 (0x20) of
// cbp is the first luminance block, bit 0 the second chrominance block.
func EncodeCBP(w *bits.Writer, cbp int) error {
	if cbp < 0 || cbp > 63 {
		return fmt.Errorf("vlc: coded block pattern %d out of range", cbp)
	}
	cbpCodes[cbp].put(w)
	return nil
}

// DecodeCBP reads a coded_block_pattern value.
func DecodeCBP(r *bits.Reader) (int, error) {
	sym, err := cbpTable.decode(r)
	if err != nil {
		return 0, err
	}
	return int(sym), nil
}
