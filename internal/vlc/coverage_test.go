package vlc

import (
	"testing"

	"mpeg2par/internal/bits"
)

// TestTableOneExhaustive decodes every coefficient of the intra table-one
// variant, both signs, plus its EOB — full coverage of the composite
// table (short B-15 codes plus inherited long codes).
func TestTableOneExhaustive(t *testing.T) {
	for sym, code := range dctOne.enc {
		run, level := int(sym>>12), sym&0xFFF
		for _, sgn := range []int32{1, -1} {
			var w bits.Writer
			code.put(&w)
			if sgn < 0 {
				w.Put(1, 1)
			} else {
				w.Put(0, 1)
			}
			EncodeEOB(&w, true)
			r := bits.NewReader(w.Bytes())
			gr, gl, eob, err := DecodeCoef(r, true, false)
			if err != nil || eob || gr != run || gl != sgn*level {
				t.Fatalf("(%d,%d) sign %d: got (%d,%d) eob=%v err=%v",
					run, level, sgn, gr, gl, eob, err)
			}
			if _, _, eob, err := DecodeCoef(r, true, false); err != nil || !eob {
				t.Fatalf("(%d,%d): EOB lost: err=%v", run, level, err)
			}
		}
	}
}

// TestInvalidPrefixesRejected: for every decode table, the all-zero
// prefixes that no code claims must produce an error rather than a bogus
// symbol.
func TestInvalidPrefixesRejected(t *testing.T) {
	zeros := []byte{0, 0, 0, 0, 0, 0}
	if _, err := DecodeCBP(bits.NewReader(zeros)); err == nil {
		t.Error("all-zero CBP accepted")
	}
	if _, err := DecodeMotionCode(bits.NewReader(zeros)); err == nil {
		t.Error("all-zero motion code accepted")
	}
	if _, err := DecodeMBType(bits.NewReader(zeros), CodingP); err == nil {
		t.Error("all-zero P macroblock type accepted")
	}
	if _, err := DecodeMBType(bits.NewReader(zeros), CodingB); err == nil {
		t.Error("all-zero B macroblock type accepted")
	}
	if _, _, _, err := DecodeCoef(bits.NewReader(zeros), true, false); err == nil {
		t.Error("all-zero table-one coefficient accepted")
	}
}

// TestDecodeAtEveryBitOffset: table decoding is position-independent —
// shifting a valid code stream by stuffing bits in front must decode the
// same symbols after skipping the stuffing.
func TestDecodeAtEveryBitOffset(t *testing.T) {
	for phase := uint(0); phase < 8; phase++ {
		var w bits.Writer
		w.Put(0x2A>>(8-phase), phase) // arbitrary stuffing
		if err := EncodeCBP(&w, 21); err != nil {
			t.Fatal(err)
		}
		if err := EncodeMotionCode(&w, -9); err != nil {
			t.Fatal(err)
		}
		if err := EncodeMBAddrInc(&w, 17); err != nil {
			t.Fatal(err)
		}
		r := bits.NewReader(w.Bytes())
		r.Skip(phase)
		if got, err := DecodeCBP(r); err != nil || got != 21 {
			t.Fatalf("phase %d: cbp %d err %v", phase, got, err)
		}
		if got, err := DecodeMotionCode(r); err != nil || got != -9 {
			t.Fatalf("phase %d: motion %d err %v", phase, got, err)
		}
		if got, err := DecodeMBAddrInc(r); err != nil || got != 17 {
			t.Fatalf("phase %d: mba %d err %v", phase, got, err)
		}
	}
}

// TestDCSizeMaxMagnitude: the widest DC differentials round-trip at both
// ends of every size class.
func TestDCSizeMaxMagnitude(t *testing.T) {
	for _, luma := range []bool{true, false} {
		for size := 1; size <= 11; size++ {
			lo := int32(1) << uint(size-1)
			hi := int32(1)<<uint(size) - 1
			for _, mag := range []int32{lo, hi} {
				for _, d := range []int32{mag, -mag} {
					var w bits.Writer
					if err := EncodeDCDifferential(&w, d, luma); err != nil {
						t.Fatal(err)
					}
					got, err := DecodeDCDifferential(bits.NewReader(w.Bytes()), luma)
					if err != nil || got != d {
						t.Fatalf("luma=%v size=%d d=%d: got %d err %v", luma, size, d, got, err)
					}
				}
			}
		}
	}
}
