package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// Table B-12: dct_dc_size_luminance, indexed by size 0..11.
var dcSizeLumaCodes = [12]Code{
	{0b100, 3}, {0b00, 2}, {0b01, 2}, {0b101, 3},
	{0b110, 3}, {0b1110, 4}, {0b11110, 5}, {0b111110, 6},
	{0b1111110, 7}, {0b11111110, 8}, {0b111111110, 9}, {0b111111111, 9},
}

// Table B-13: dct_dc_size_chrominance, indexed by size 0..11.
var dcSizeChromaCodes = [12]Code{
	{0b00, 2}, {0b01, 2}, {0b10, 2}, {0b110, 3},
	{0b1110, 4}, {0b11110, 5}, {0b111110, 6}, {0b1111110, 7},
	{0b11111110, 8}, {0b111111110, 9}, {0b1111111110, 10}, {0b1111111111, 10},
}

var (
	dcSizeLumaTable   = buildTable("dct_dc_size_luminance", dcEntries(dcSizeLumaCodes))
	dcSizeChromaTable = buildTable("dct_dc_size_chrominance", dcEntries(dcSizeChromaCodes))
)

func dcEntries(codes [12]Code) []entry {
	es := make([]entry, len(codes))
	for i := range codes {
		es[i] = entry{codes[i], int32(i)}
	}
	return es
}

// EncodeDCSize writes a dct_dc_size (0..11) for a luminance or chrominance
// block.
func EncodeDCSize(w *bits.Writer, size int, luma bool) error {
	if size < 0 || size > 11 {
		return fmt.Errorf("vlc: dct_dc_size %d out of range", size)
	}
	if luma {
		dcSizeLumaCodes[size].put(w)
	} else {
		dcSizeChromaCodes[size].put(w)
	}
	return nil
}

// DecodeDCSize reads a dct_dc_size for a luminance or chrominance block.
func DecodeDCSize(r *bits.Reader, luma bool) (int, error) {
	t := dcSizeChromaTable
	if luma {
		t = dcSizeLumaTable
	}
	sym, err := t.decode(r)
	if err != nil {
		return 0, err
	}
	return int(sym), nil
}

// EncodeDCDifferential writes a DC differential: the size VLC followed by
// the size-bit differential code (§7.2.1). diff must satisfy |diff| < 2^11.
func EncodeDCDifferential(w *bits.Writer, diff int32, luma bool) error {
	size := bitLen32(abs32(diff))
	if size > 11 {
		return fmt.Errorf("vlc: DC differential %d too large", diff)
	}
	if err := EncodeDCSize(w, size, luma); err != nil {
		return err
	}
	if size > 0 {
		code := diff
		if diff < 0 {
			code = diff + (1 << uint(size)) - 1
		}
		w.Put(uint32(code), uint(size))
	}
	return nil
}

// DecodeDCDifferential reads a DC differential.
func DecodeDCDifferential(r *bits.Reader, luma bool) (int32, error) {
	size, err := DecodeDCSize(r, luma)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, nil
	}
	code := int32(r.Read(uint(size)))
	half := int32(1) << uint(size-1)
	if code < half {
		code = code - 2*half + 1
	}
	return code, r.Err()
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func bitLen32(v int32) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
