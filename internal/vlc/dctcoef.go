package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// rl is one (run, level) row of a DCT coefficient table. The code excludes
// the sign bit, which follows it in the stream (level > 0 always here).
type rl struct {
	run   int
	level int32
	code  Code
}

// Table B-14 (DCT coefficients table zero; identical to the MPEG-1 table).
// The (0,1) pair is special-cased: code '1' as the first coefficient of a
// non-intra block, '11' otherwise; it is therefore excluded from this list
// and handled by the table variants below.
var b14Pairs = []rl{
	{1, 1, Code{0b011, 3}},
	{0, 2, Code{0b0100, 4}},
	{2, 1, Code{0b0101, 4}},
	{0, 3, Code{0b00101, 5}},
	{3, 1, Code{0b00111, 5}},
	{4, 1, Code{0b00110, 5}},
	{1, 2, Code{0b000110, 6}},
	{5, 1, Code{0b000111, 6}},
	{6, 1, Code{0b000101, 6}},
	{7, 1, Code{0b000100, 6}},
	{0, 4, Code{0b0000110, 7}},
	{2, 2, Code{0b0000100, 7}},
	{8, 1, Code{0b0000111, 7}},
	{9, 1, Code{0b0000101, 7}},
	{0, 5, Code{0b00100110, 8}},
	{0, 6, Code{0b00100001, 8}},
	{1, 3, Code{0b00100101, 8}},
	{3, 2, Code{0b00100100, 8}},
	{10, 1, Code{0b00100111, 8}},
	{11, 1, Code{0b00100011, 8}},
	{12, 1, Code{0b00100010, 8}},
	{13, 1, Code{0b00100000, 8}},
	{0, 7, Code{0b0000001010, 10}},
	{1, 4, Code{0b0000001100, 10}},
	{2, 3, Code{0b0000001011, 10}},
	{4, 2, Code{0b0000001111, 10}},
	{5, 2, Code{0b0000001001, 10}},
	{14, 1, Code{0b0000001110, 10}},
	{15, 1, Code{0b0000001101, 10}},
	{16, 1, Code{0b0000001000, 10}},
	{0, 8, Code{0b000000011101, 12}},
	{0, 9, Code{0b000000011000, 12}},
	{0, 10, Code{0b000000010011, 12}},
	{0, 11, Code{0b000000010000, 12}},
	{1, 5, Code{0b000000011011, 12}},
	{2, 4, Code{0b000000010100, 12}},
	{3, 3, Code{0b000000011100, 12}},
	{4, 3, Code{0b000000010010, 12}},
	{6, 2, Code{0b000000011110, 12}},
	{7, 2, Code{0b000000010101, 12}},
	{8, 2, Code{0b000000010001, 12}},
	{17, 1, Code{0b000000011111, 12}},
	{18, 1, Code{0b000000011010, 12}},
	{19, 1, Code{0b000000011001, 12}},
	{20, 1, Code{0b000000010111, 12}},
	{21, 1, Code{0b000000010110, 12}},
	{0, 12, Code{0b0000000011010, 13}},
	{0, 13, Code{0b0000000011001, 13}},
	{0, 14, Code{0b0000000011000, 13}},
	{0, 15, Code{0b0000000010111, 13}},
	{1, 6, Code{0b0000000010110, 13}},
	{1, 7, Code{0b0000000010101, 13}},
	{2, 5, Code{0b0000000010100, 13}},
	{3, 4, Code{0b0000000010011, 13}},
	{5, 3, Code{0b0000000010010, 13}},
	{9, 2, Code{0b0000000010001, 13}},
	{10, 2, Code{0b0000000010000, 13}},
	{22, 1, Code{0b0000000011111, 13}},
	{23, 1, Code{0b0000000011110, 13}},
	{24, 1, Code{0b0000000011101, 13}},
	{25, 1, Code{0b0000000011100, 13}},
	{26, 1, Code{0b0000000011011, 13}},
	{0, 16, Code{0b00000000011111, 14}},
	{0, 17, Code{0b00000000011110, 14}},
	{0, 18, Code{0b00000000011101, 14}},
	{0, 19, Code{0b00000000011100, 14}},
	{0, 20, Code{0b00000000011011, 14}},
	{0, 21, Code{0b00000000011010, 14}},
	{0, 22, Code{0b00000000011001, 14}},
	{0, 23, Code{0b00000000011000, 14}},
	{0, 24, Code{0b00000000010111, 14}},
	{0, 25, Code{0b00000000010110, 14}},
	{0, 26, Code{0b00000000010101, 14}},
	{0, 27, Code{0b00000000010100, 14}},
	{0, 28, Code{0b00000000010011, 14}},
	{0, 29, Code{0b00000000010010, 14}},
	{0, 30, Code{0b00000000010001, 14}},
	{0, 31, Code{0b00000000010000, 14}},
	{0, 32, Code{0b000000000011000, 15}},
	{0, 33, Code{0b000000000010111, 15}},
	{0, 34, Code{0b000000000010110, 15}},
	{0, 35, Code{0b000000000010101, 15}},
	{0, 36, Code{0b000000000010100, 15}},
	{0, 37, Code{0b000000000010011, 15}},
	{0, 38, Code{0b000000000010010, 15}},
	{0, 39, Code{0b000000000010001, 15}},
	{0, 40, Code{0b000000000010000, 15}},
	{1, 8, Code{0b000000000011111, 15}},
	{1, 9, Code{0b000000000011110, 15}},
	{1, 10, Code{0b000000000011101, 15}},
	{1, 11, Code{0b000000000011100, 15}},
	{1, 12, Code{0b000000000011011, 15}},
	{1, 13, Code{0b000000000011010, 15}},
	{1, 14, Code{0b000000000011001, 15}},
	{1, 15, Code{0b0000000000010011, 16}},
	{1, 16, Code{0b0000000000010010, 16}},
	{1, 17, Code{0b0000000000010001, 16}},
	{1, 18, Code{0b0000000000010000, 16}},
	{6, 3, Code{0b0000000000010100, 16}},
	{11, 2, Code{0b0000000000011010, 16}},
	{12, 2, Code{0b0000000000011001, 16}},
	{13, 2, Code{0b0000000000011000, 16}},
	{14, 2, Code{0b0000000000010111, 16}},
	{15, 2, Code{0b0000000000010110, 16}},
	{16, 2, Code{0b0000000000010101, 16}},
	{27, 1, Code{0b0000000000011111, 16}},
	{28, 1, Code{0b0000000000011110, 16}},
	{29, 1, Code{0b0000000000011101, 16}},
	{30, 1, Code{0b0000000000011100, 16}},
	{31, 1, Code{0b0000000000011011, 16}},
}

// b15Short holds the short (≤ 8 bit) codes of Table B-15, including its
// own (0,1) and (0,2) assignments. Pairs absent here inherit their ≥10-bit
// table-zero codes (see the package comment for the fidelity caveat).
var b15Short = []rl{
	{0, 1, Code{0b10, 2}},
	{1, 1, Code{0b010, 3}},
	{0, 2, Code{0b110, 3}},
	{0, 3, Code{0b0111, 4}},
	{0, 4, Code{0b11100, 5}},
	{0, 5, Code{0b11101, 5}},
	{2, 1, Code{0b00101, 5}},
	{1, 2, Code{0b00110, 5}},
	{3, 1, Code{0b00111, 5}},
	{0, 6, Code{0b000101, 6}},
	{0, 7, Code{0b000100, 6}},
	{4, 1, Code{0b000110, 6}},
	{5, 1, Code{0b000111, 6}},
	{7, 1, Code{0b0000100, 7}},
	{8, 1, Code{0b0000101, 7}},
	{6, 1, Code{0b0000110, 7}},
	{2, 2, Code{0b0000111, 7}},
	{0, 8, Code{0b1111011, 7}},
	{0, 9, Code{0b1111100, 7}},
	{9, 1, Code{0b1111000, 7}},
	{1, 3, Code{0b1111001, 7}},
	{10, 1, Code{0b1111010, 7}},
	{1, 5, Code{0b00100000, 8}},
	{11, 1, Code{0b00100001, 8}},
	{0, 11, Code{0b00100010, 8}},
	{0, 10, Code{0b00100011, 8}},
	{13, 1, Code{0b00100100, 8}},
	{12, 1, Code{0b00100101, 8}},
	{3, 2, Code{0b00100110, 8}},
	{1, 4, Code{0b00100111, 8}},
	{0, 12, Code{0b11111010, 8}},
	{0, 13, Code{0b11111011, 8}},
	{2, 3, Code{0b11111100, 8}},
	{4, 2, Code{0b11111101, 8}},
	{0, 14, Code{0b11111110, 8}},
	{0, 15, Code{0b11111111, 8}},
}

var (
	eobB14   = Code{0b10, 2}
	eobB15   = Code{0b0110, 4}
	escape   = Code{0b000001, 6}
	firstOne = Code{0b1, 1}  // B-14 (0,1) as first coefficient of a non-intra block
	nextOne  = Code{0b11, 2} // B-14 (0,1) elsewhere
)

// Decoded-symbol encoding inside the lookup tables. Levels occupy 12 bits
// so that escape-range magnitudes (up to 2047) cannot alias a (run, level)
// pair with a different run.
const (
	symEOB    = 1 << 18
	symEscape = 1 << 19
)

func pairSym(run int, level int32) int32 { return int32(run)<<12 | level }

// dctTable bundles the decode LUT and the encode map for one coefficient
// table variant.
type dctTable struct {
	dec *table
	enc map[int32]Code
}

func buildDCT(name string, pairs []rl, eob Code, hasEOB bool) dctTable {
	es := make([]entry, 0, len(pairs)+2)
	enc := make(map[int32]Code, len(pairs))
	for _, p := range pairs {
		es = append(es, entry{p.code, pairSym(p.run, p.level)})
		enc[pairSym(p.run, p.level)] = p.code
	}
	if hasEOB {
		es = append(es, entry{eob, symEOB})
	}
	es = append(es, entry{escape, symEscape})
	return dctTable{dec: buildTable(name, es), enc: enc}
}

var (
	// dctZeroFirst decodes the first coefficient of a non-intra block with
	// table zero: no EOB, and (0,1) is the 1-bit code.
	dctZeroFirst = buildDCT("dct_table_zero_first",
		append([]rl{{0, 1, firstOne}}, b14Pairs...), Code{}, false)
	// dctZeroNext decodes every other table-zero coefficient.
	dctZeroNext = buildDCT("dct_table_zero",
		append([]rl{{0, 1, nextOne}}, b14Pairs...), eobB14, true)
	// dctOne decodes table-one (intra_vlc_format = 1) coefficients.
	dctOne = buildDCT("dct_table_one", func() []rl {
		short := make(map[int32]bool, len(b15Short))
		for _, p := range b15Short {
			short[pairSym(p.run, p.level)] = true
		}
		all := append([]rl{}, b15Short...)
		for _, p := range b14Pairs {
			if p.code.Len >= 10 && !short[pairSym(p.run, p.level)] {
				all = append(all, p)
			}
		}
		return all
	}(), eobB15, true)
)

func selectDCT(tableOne, first bool) *dctTable {
	if tableOne {
		return &dctOne
	}
	if first {
		return &dctZeroFirst
	}
	return &dctZeroNext
}

// EncodeCoef writes one (run, level) DCT coefficient. level must be
// non-zero and in [-2047, 2047]; run in [0, 63]. Pairs without a VLC are
// written as the 24-bit MPEG-2 escape (6-bit escape code, 6-bit run,
// 12-bit two's-complement level). first selects the non-intra
// first-coefficient convention of table zero.
func EncodeCoef(w *bits.Writer, tableOne, first bool, run int, level int32) error {
	if level == 0 || level < -2047 || level > 2047 {
		return fmt.Errorf("vlc: DCT level %d not codable", level)
	}
	if run < 0 || run > 63 {
		return fmt.Errorf("vlc: DCT run %d out of range", run)
	}
	t := selectDCT(tableOne, first)
	mag := level
	if mag < 0 {
		mag = -mag
	}
	if c, ok := t.enc[pairSym(run, mag)]; ok {
		c.put(w)
		if level < 0 {
			w.Put(1, 1)
		} else {
			w.Put(0, 1)
		}
		return nil
	}
	escape.put(w)
	w.Put(uint32(run), 6)
	w.Put(uint32(level)&0xFFF, 12)
	return nil
}

// EncodeEOB writes the end-of-block code for the selected table.
func EncodeEOB(w *bits.Writer, tableOne bool) {
	if tableOne {
		eobB15.put(w)
	} else {
		eobB14.put(w)
	}
}

// DecodeCoef reads one DCT coefficient. It returns eob=true at end of
// block (run and level are then meaningless). first selects the non-intra
// first-coefficient convention of table zero, under which EOB cannot
// occur.
func DecodeCoef(r *bits.Reader, tableOne, first bool) (run int, level int32, eob bool, err error) {
	t := selectDCT(tableOne, first)
	sym, err := t.dec.decode(r)
	if err != nil {
		return 0, 0, false, err
	}
	switch sym {
	case symEOB:
		return 0, 0, true, nil
	case symEscape:
		run = int(r.Read(6))
		raw := int32(r.Read(12))
		if raw >= 2048 {
			raw -= 4096
		}
		if err := r.Err(); err != nil {
			return 0, 0, false, err
		}
		if raw == 0 || raw == -2048 {
			return 0, 0, false, fmt.Errorf("vlc: forbidden escape level %d", raw)
		}
		return run, raw, false, nil
	default:
		run = int(sym >> 12)
		level = sym & 0xFFF
		if r.ReadBit() {
			level = -level
		}
		if err := r.Err(); err != nil {
			return 0, 0, false, err
		}
		return run, level, false, nil
	}
}

// MaxVLCLevel returns the largest level with a VLC for the given run in
// the given table (0 if none) — useful for tests and encoder heuristics.
func MaxVLCLevel(tableOne bool, run int) int32 {
	t := selectDCT(tableOne, false)
	var maxL int32
	for sym := range t.enc {
		if int(sym>>12) == run && sym&0xFFF > maxL {
			maxL = sym & 0xFFF
		}
	}
	return maxL
}
