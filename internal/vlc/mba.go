package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// Table B-1: macroblock_address_increment. Values 1..33 have code words;
// larger increments are coded with one macroblock_escape (adds 33) per 33.
var mbaCodes = [34]Code{
	0:  {},             // unused
	1:  {0b1, 1},       //
	2:  {0b011, 3},     //
	3:  {0b010, 3},     //
	4:  {0b0011, 4},    //
	5:  {0b0010, 4},    //
	6:  {0b00011, 5},   //
	7:  {0b00010, 5},   //
	8:  {0b0000111, 7}, //
	9:  {0b0000110, 7}, //
	10: {0b00001011, 8},
	11: {0b00001010, 8},
	12: {0b00001001, 8},
	13: {0b00001000, 8},
	14: {0b00000111, 8},
	15: {0b00000110, 8},
	16: {0b0000010111, 10},
	17: {0b0000010110, 10},
	18: {0b0000010101, 10},
	19: {0b0000010100, 10},
	20: {0b0000010011, 10},
	21: {0b0000010010, 10},
	22: {0b00000100011, 11},
	23: {0b00000100010, 11},
	24: {0b00000100001, 11},
	25: {0b00000100000, 11},
	26: {0b00000011111, 11},
	27: {0b00000011110, 11},
	28: {0b00000011101, 11},
	29: {0b00000011100, 11},
	30: {0b00000011011, 11},
	31: {0b00000011010, 11},
	32: {0b00000011001, 11},
	33: {0b00000011000, 11},
}

// mbaEscape is the macroblock_escape code; each occurrence adds 33 to the
// decoded increment.
var mbaEscape = Code{0b00000001000, 11}

const mbaEscapeSym = 34

var mbaTable = buildTable("macroblock_address_increment", func() []entry {
	es := make([]entry, 0, 34)
	for v := 1; v <= 33; v++ {
		es = append(es, entry{mbaCodes[v], int32(v)})
	}
	return append(es, entry{mbaEscape, mbaEscapeSym})
}())

// EncodeMBAddrInc writes a macroblock address increment >= 1, emitting
// escape codes as needed.
func EncodeMBAddrInc(w *bits.Writer, inc int) error {
	if inc < 1 {
		return fmt.Errorf("vlc: macroblock address increment %d < 1", inc)
	}
	for inc > 33 {
		mbaEscape.put(w)
		inc -= 33
	}
	mbaCodes[inc].put(w)
	return nil
}

// mbaPrefixOK marks, for every 11-bit lookahead value, whether some
// macroblock_address_increment code word (or the escape) is a prefix of
// it. Table B-1's longest code is 11 bits, so 11 bits of lookahead
// decide membership exactly.
var mbaPrefixOK = func() (t [1 << 11]bool) {
	mark := func(c Code) {
		shift := uint(11 - c.Len)
		base := c.Bits << shift
		for v := uint32(0); v < 1<<shift; v++ {
			t[base|v] = true
		}
	}
	for v := 1; v <= 33; v++ {
		mark(mbaCodes[v])
	}
	mark(mbaEscape)
	return
}()

// ValidMBAddrIncPrefix reports whether the 11-bit lookahead v (the next
// 11 bits of the stream, MSB-first) can begin a macroblock address
// increment. A candidate resynchronization point must start with one —
// the speculative intra-slice splitter uses this as a one-load
// prefilter before trial-parsing a full macroblock.
func ValidMBAddrIncPrefix(v uint32) bool { return mbaPrefixOK[v&(1<<11-1)] }

// DecodeMBAddrInc reads a macroblock address increment, folding in any
// escape codes.
func DecodeMBAddrInc(r *bits.Reader) (int, error) {
	inc := 0
	for {
		sym, err := mbaTable.decode(r)
		if err != nil {
			return 0, err
		}
		if sym == mbaEscapeSym {
			inc += 33
			// A pathological stream could stuff escapes forever; bound by
			// the widest legal picture (macroblock address < 2^16 or so).
			if inc > 1<<20 {
				return 0, fmt.Errorf("vlc: runaway macroblock escape sequence")
			}
			continue
		}
		return inc + int(sym), nil
	}
}
