package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// MBType is the decoded macroblock_type flag set (§6.3.17.1).
type MBType struct {
	Quant          bool // macroblock_quant: quantiser_scale_code follows
	MotionForward  bool // forward motion vectors present
	MotionBackward bool // backward motion vectors present
	Pattern        bool // coded_block_pattern follows
	Intra          bool // intra-coded macroblock
}

// flags packs the MBType booleans for table symbols.
func (m MBType) flags() int32 {
	var f int32
	if m.Quant {
		f |= 1
	}
	if m.MotionForward {
		f |= 2
	}
	if m.MotionBackward {
		f |= 4
	}
	if m.Pattern {
		f |= 8
	}
	if m.Intra {
		f |= 16
	}
	return f
}

func mbTypeFromFlags(f int32) MBType {
	return MBType{
		Quant:          f&1 != 0,
		MotionForward:  f&2 != 0,
		MotionBackward: f&4 != 0,
		Pattern:        f&8 != 0,
		Intra:          f&16 != 0,
	}
}

// Tables B-2 (I), B-3 (P), B-4 (B): macroblock_type code assignments.
var (
	mbTypeI = []struct {
		t MBType
		c Code
	}{
		{MBType{Intra: true}, Code{0b1, 1}},
		{MBType{Intra: true, Quant: true}, Code{0b01, 2}},
	}
	mbTypeP = []struct {
		t MBType
		c Code
	}{
		{MBType{MotionForward: true, Pattern: true}, Code{0b1, 1}},
		{MBType{Pattern: true}, Code{0b01, 2}},
		{MBType{MotionForward: true}, Code{0b001, 3}},
		{MBType{Intra: true}, Code{0b00011, 5}},
		{MBType{Quant: true, MotionForward: true, Pattern: true}, Code{0b00010, 5}},
		{MBType{Quant: true, Pattern: true}, Code{0b00001, 5}},
		{MBType{Quant: true, Intra: true}, Code{0b000001, 6}},
	}
	mbTypeB = []struct {
		t MBType
		c Code
	}{
		{MBType{MotionForward: true, MotionBackward: true}, Code{0b10, 2}},
		{MBType{MotionForward: true, MotionBackward: true, Pattern: true}, Code{0b11, 2}},
		{MBType{MotionBackward: true}, Code{0b010, 3}},
		{MBType{MotionBackward: true, Pattern: true}, Code{0b011, 3}},
		{MBType{MotionForward: true}, Code{0b0010, 4}},
		{MBType{MotionForward: true, Pattern: true}, Code{0b0011, 4}},
		{MBType{Intra: true}, Code{0b00011, 5}},
		{MBType{Quant: true, MotionForward: true, MotionBackward: true, Pattern: true}, Code{0b00010, 5}},
		{MBType{Quant: true, MotionForward: true, Pattern: true}, Code{0b000011, 6}},
		{MBType{Quant: true, MotionBackward: true, Pattern: true}, Code{0b000010, 6}},
		{MBType{Quant: true, Intra: true}, Code{0b000001, 6}},
	}
)

// PictureCoding selects the macroblock_type table.
type PictureCoding int

// Picture coding types as coded in the picture header (§6.3.9).
const (
	CodingI PictureCoding = 1
	CodingP PictureCoding = 2
	CodingB PictureCoding = 3
)

func (p PictureCoding) String() string {
	switch p {
	case CodingI:
		return "I"
	case CodingP:
		return "P"
	case CodingB:
		return "B"
	}
	return fmt.Sprintf("PictureCoding(%d)", int(p))
}

var (
	mbTypeTables  [4]*table
	mbTypeEncode  [4]map[int32]Code
	mbTypeDefined = [4][]struct {
		t MBType
		c Code
	}{CodingI: mbTypeI, CodingP: mbTypeP, CodingB: mbTypeB}
)

func init() {
	for _, pc := range []PictureCoding{CodingI, CodingP, CodingB} {
		defs := mbTypeDefined[pc]
		es := make([]entry, len(defs))
		enc := make(map[int32]Code, len(defs))
		for i, d := range defs {
			es[i] = entry{d.c, d.t.flags()}
			enc[d.t.flags()] = d.c
		}
		mbTypeTables[pc] = buildTable("macroblock_type("+pc.String()+")", es)
		mbTypeEncode[pc] = enc
	}
}

// EncodeMBType writes a macroblock_type for the given picture coding type.
// The flag combination must be one the table defines.
func EncodeMBType(w *bits.Writer, pc PictureCoding, t MBType) error {
	if pc < CodingI || pc > CodingB {
		return fmt.Errorf("vlc: bad picture coding type %d", pc)
	}
	c, ok := mbTypeEncode[pc][t.flags()]
	if !ok {
		return fmt.Errorf("vlc: macroblock type %+v not codable in %s picture", t, pc)
	}
	c.put(w)
	return nil
}

// DecodeMBType reads a macroblock_type for the given picture coding type.
func DecodeMBType(r *bits.Reader, pc PictureCoding) (MBType, error) {
	if pc < CodingI || pc > CodingB {
		return MBType{}, fmt.Errorf("vlc: bad picture coding type %d", pc)
	}
	sym, err := mbTypeTables[pc].decode(r)
	if err != nil {
		return MBType{}, err
	}
	return mbTypeFromFlags(sym), nil
}
