package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// Table B-10: motion_code, indexed by motion_code+16 for values -16..+16.
var motionCodes = [33]Code{
	{0x19, 11}, {0x1b, 11}, {0x1d, 11}, {0x1f, 11}, {0x21, 11}, {0x23, 11},
	{0x13, 10}, {0x15, 10}, {0x17, 10}, {0x07, 8}, {0x09, 8}, {0x0b, 8},
	{0x07, 7}, {0x03, 5}, {0x03, 4}, {0x03, 3}, {0x01, 1}, {0x02, 3},
	{0x02, 4}, {0x02, 5}, {0x06, 7}, {0x0a, 8}, {0x08, 8}, {0x06, 8},
	{0x16, 10}, {0x14, 10}, {0x12, 10}, {0x22, 11}, {0x20, 11}, {0x1e, 11},
	{0x1c, 11}, {0x1a, 11}, {0x18, 11},
}

var motionTable = buildTable("motion_code", func() []entry {
	es := make([]entry, 33)
	for i := range motionCodes {
		es[i] = entry{motionCodes[i], int32(i - 16)}
	}
	return es
}())

// EncodeMotionCode writes a motion_code in [-16, 16].
func EncodeMotionCode(w *bits.Writer, code int) error {
	if code < -16 || code > 16 {
		return fmt.Errorf("vlc: motion code %d out of range", code)
	}
	motionCodes[code+16].put(w)
	return nil
}

// DecodeMotionCode reads a motion_code in [-16, 16].
func DecodeMotionCode(r *bits.Reader) (int, error) {
	sym, err := motionTable.decode(r)
	if err != nil {
		return 0, err
	}
	return int(sym), nil
}
