// Package vlc implements the variable-length (Huffman) code tables of
// ISO/IEC 13818-2 Annex B used by MPEG-2 video: macroblock address
// increment (B-1), macroblock type (B-2..B-4), coded block pattern (B-9),
// motion code (B-10), DC size (B-12, B-13) and the two DCT coefficient
// tables (B-14, B-15).
//
// Every table is defined once as (symbol, code, length) data; encoding
// indexes the data directly and decoding goes through a flat 2^maxLen
// lookup built at init, so encoder and decoder cannot drift apart. Tests
// verify prefix-freedom and spot-check code words against the standard.
//
// Table one (B-15) note: its short codes (≤ 8 bits) follow the standard;
// (run,level) pairs without a short code reuse their table-zero long codes
// (≥ 10 bits, all in the '000000...' space B-15 leaves free), which keeps
// the table complete and prefix-free. Streams produced by this module
// round-trip exactly; third-party streams using B-15 long codes may not.
package vlc

import (
	"fmt"

	"mpeg2par/internal/bits"
)

// Code is one variable-length code word: the low Len bits of Bits, written
// MSB first.
type Code struct {
	Bits uint32
	Len  uint8
}

func (c Code) put(w *bits.Writer) { w.Put(c.Bits, uint(c.Len)) }

// entry pairs a code word with the symbol it decodes to.
type entry struct {
	code Code
	sym  int32
}

// table is a flat-lookup prefix decoder. slot i of lut (i being the next
// maxLen bits of the stream, left-justified) holds length<<24 | symbol
// (symbol offset-encoded to stay non-negative), or 0 for invalid codes.
type table struct {
	lut    []uint32
	maxLen uint
	name   string
}

const symBias = 1 << 20 // keeps packed symbols positive

func buildTable(name string, entries []entry) *table {
	maxLen := uint(0)
	for _, e := range entries {
		if uint(e.code.Len) > maxLen {
			maxLen = uint(e.code.Len)
		}
		if e.code.Len == 0 {
			panic("vlc: zero-length code in " + name)
		}
	}
	t := &table{lut: make([]uint32, 1<<maxLen), maxLen: maxLen, name: name}
	for _, e := range entries {
		shift := maxLen - uint(e.code.Len)
		base := e.code.Bits << shift
		packed := uint32(e.code.Len)<<24 | uint32(e.sym+symBias)
		for i := uint32(0); i < 1<<shift; i++ {
			slot := base | i
			if t.lut[slot] != 0 {
				panic(fmt.Sprintf("vlc: table %s: code %0*b/%d overlaps", name, e.code.Len, e.code.Bits, e.code.Len))
			}
			t.lut[slot] = packed
		}
	}
	return t
}

// decode reads one symbol. On an invalid code it returns an error and
// leaves the reader positioned at the offending code.
func (t *table) decode(r *bits.Reader) (int32, error) {
	idx := r.Peek(t.maxLen)
	packed := t.lut[idx]
	if packed == 0 {
		if r.Remaining() < int64(t.maxLen) && r.Remaining() <= 0 {
			return 0, fmt.Errorf("vlc: %s: %w", t.name, bits.ErrUnderflow)
		}
		return 0, fmt.Errorf("vlc: %s: invalid code %0*b at bit %d", t.name, t.maxLen, idx, r.BitPos())
	}
	length := uint(packed >> 24)
	if r.Remaining() < int64(length) {
		return 0, fmt.Errorf("vlc: %s: %w", t.name, bits.ErrUnderflow)
	}
	r.Skip(length)
	return int32(packed&0xFFFFFF) - symBias, nil
}
