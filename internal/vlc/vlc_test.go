package vlc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpeg2par/internal/bits"
)

// --- prefix-freedom ------------------------------------------------------

// codeString renders a Code as its bit string for prefix checks.
func codeString(c Code) string {
	var sb strings.Builder
	for i := int(c.Len) - 1; i >= 0; i-- {
		if c.Bits>>uint(i)&1 != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func checkPrefixFree(t *testing.T, name string, codes []Code) {
	t.Helper()
	ss := make([]string, len(codes))
	for i, c := range codes {
		ss[i] = codeString(c)
	}
	for i := range ss {
		for j := range ss {
			if i != j && strings.HasPrefix(ss[j], ss[i]) {
				t.Errorf("%s: %q is a prefix of %q", name, ss[i], ss[j])
			}
		}
	}
}

func TestTablesPrefixFree(t *testing.T) {
	// buildTable already panics on overlaps at init; these checks give
	// readable diagnostics and also cover composite tables.
	var mba []Code
	for v := 1; v <= 33; v++ {
		mba = append(mba, mbaCodes[v])
	}
	mba = append(mba, mbaEscape)
	checkPrefixFree(t, "B-1", mba)

	for _, pc := range []PictureCoding{CodingI, CodingP, CodingB} {
		var cs []Code
		for _, d := range mbTypeDefined[pc] {
			cs = append(cs, d.c)
		}
		checkPrefixFree(t, "macroblock_type "+pc.String(), cs)
	}

	checkPrefixFree(t, "B-9", cbpCodes[:])
	checkPrefixFree(t, "B-10", motionCodes[:])
	checkPrefixFree(t, "B-12", dcSizeLumaCodes[:])
	checkPrefixFree(t, "B-13", dcSizeChromaCodes[:])

	zeroNext := []Code{eobB14, escape, nextOne}
	for _, p := range b14Pairs {
		zeroNext = append(zeroNext, p.code)
	}
	checkPrefixFree(t, "B-14 next", zeroNext)

	zeroFirst := []Code{escape, firstOne}
	for _, p := range b14Pairs {
		zeroFirst = append(zeroFirst, p.code)
	}
	checkPrefixFree(t, "B-14 first", zeroFirst)

	one := []Code{eobB15, escape}
	short := map[int32]bool{}
	for _, p := range b15Short {
		one = append(one, p.code)
		short[pairSym(p.run, p.level)] = true
	}
	for _, p := range b14Pairs {
		if p.code.Len >= 10 && !short[pairSym(p.run, p.level)] {
			one = append(one, p.code)
		}
	}
	checkPrefixFree(t, "table one", one)
}

// --- spot checks against published code words ----------------------------

func TestKnownCodeWords(t *testing.T) {
	check := func(name string, got Code, bits uint32, length uint8) {
		t.Helper()
		if got.Bits != bits || got.Len != length {
			t.Errorf("%s: got %0*b/%d, want %0*b/%d", name, got.Len, got.Bits, got.Len, length, bits, length)
		}
	}
	check("mba 1", mbaCodes[1], 0b1, 1)
	check("mba 8", mbaCodes[8], 0b0000111, 7)
	check("mba 33", mbaCodes[33], 0b00000011000, 11)
	check("mba escape", mbaEscape, 0b00000001000, 11)

	check("cbp 60", cbpCodes[60], 0b111, 3)
	check("cbp 4", cbpCodes[4], 0b1101, 4)
	check("cbp 1", cbpCodes[1], 0b01011, 5)
	check("cbp 63", cbpCodes[63], 0b001100, 6)

	check("motion 0", motionCodes[16], 0b1, 1)
	check("motion +1", motionCodes[17], 0b010, 3)
	check("motion -1", motionCodes[15], 0b011, 3)
	check("motion +16", motionCodes[32], 0b00000011000, 11)
	check("motion -16", motionCodes[0], 0b00000011001, 11)

	check("dc luma 0", dcSizeLumaCodes[0], 0b100, 3)
	check("dc luma 1", dcSizeLumaCodes[1], 0b00, 2)
	check("dc luma 11", dcSizeLumaCodes[11], 0b111111111, 9)
	check("dc chroma 0", dcSizeChromaCodes[0], 0b00, 2)
	check("dc chroma 11", dcSizeChromaCodes[11], 0b1111111111, 10)

	check("B-14 EOB", eobB14, 0b10, 2)
	check("B-15 EOB", eobB15, 0b0110, 4)
	check("escape", escape, 0b000001, 6)
	check("B-14 (0,1) first", firstOne, 0b1, 1)
	check("B-14 (0,1) next", nextOne, 0b11, 2)

	// A few B-14 rows straight from the standard.
	wantPairs := map[[2]int32]Code{
		{1, 1}:  {0b011, 3},
		{0, 2}:  {0b0100, 4},
		{0, 3}:  {0b00101, 5},
		{13, 1}: {0b00100000, 8},
		{0, 7}:  {0b0000001010, 10},
		{0, 8}:  {0b000000011101, 12},
		{1, 18}: {0b0000000000010000, 16},
		{31, 1}: {0b0000000000011011, 16},
	}
	for k, want := range wantPairs {
		got, ok := dctZeroNext.enc[pairSym(int(k[0]), k[1])]
		if !ok {
			t.Errorf("B-14 missing pair (%d,%d)", k[0], k[1])
			continue
		}
		check("B-14 pair", got, want.Bits, want.Len)
	}
}

func TestB14Complete(t *testing.T) {
	// B-14 defines exactly 113 run/level pairs (incl. (0,1)).
	if got := len(b14Pairs) + 1; got != 111 {
		t.Errorf("B-14 pair count = %d, want 111 (plus EOB and escape = 113 codes)", got)
	}
}

// --- round trips ----------------------------------------------------------

func TestMBAddrIncRoundTrip(t *testing.T) {
	var w bits.Writer
	vals := []int{1, 2, 33, 34, 66, 67, 100, 500}
	for _, v := range vals {
		if err := EncodeMBAddrInc(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := bits.NewReader(w.Bytes())
	for _, v := range vals {
		got, err := DecodeMBAddrInc(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("got %d want %d", got, v)
		}
	}
}

// TestValidMBAddrIncPrefix checks the 11-bit prefilter against the
// ground truth: a lookahead is valid iff decoding it (padded with a
// terminator) starts with a legal code word.
func TestValidMBAddrIncPrefix(t *testing.T) {
	for v := uint32(0); v < 1<<11; v++ {
		// Ground truth by direct prefix match against table B-1 + escape.
		want := false
		for inc := 1; inc <= 33 && !want; inc++ {
			c := mbaCodes[inc]
			if v>>(11-uint32(c.Len)) == c.Bits {
				want = true
			}
		}
		if v>>(11-uint32(mbaEscape.Len)) == mbaEscape.Bits {
			want = true
		}
		if got := ValidMBAddrIncPrefix(v); got != want {
			t.Fatalf("prefix %011b: got %v want %v", v, got, want)
		}
	}
	// Every encodable increment must pass its own prefilter.
	for inc := 1; inc <= 100; inc++ {
		var w bits.Writer
		if err := EncodeMBAddrInc(&w, inc); err != nil {
			t.Fatal(err)
		}
		w.Put(0x7ff, 11) // padding so Peek has bits
		r := bits.NewReader(w.Bytes())
		if !ValidMBAddrIncPrefix(r.Peek(11)) {
			t.Fatalf("inc %d rejected by its own prefilter", inc)
		}
	}
}

func TestMBAddrIncErrors(t *testing.T) {
	var w bits.Writer
	if err := EncodeMBAddrInc(&w, 0); err == nil {
		t.Fatal("inc 0 must fail")
	}
	// Runaway escapes.
	for i := 0; i < 40000; i++ {
		mbaEscape.put(&w)
	}
	if _, err := DecodeMBAddrInc(bits.NewReader(w.Bytes())); err == nil {
		t.Fatal("runaway escape must fail")
	}
}

func TestMBTypeRoundTrip(t *testing.T) {
	for _, pc := range []PictureCoding{CodingI, CodingP, CodingB} {
		var w bits.Writer
		var types []MBType
		for _, d := range mbTypeDefined[pc] {
			types = append(types, d.t)
			if err := EncodeMBType(&w, pc, d.t); err != nil {
				t.Fatal(err)
			}
		}
		r := bits.NewReader(w.Bytes())
		for i, want := range types {
			got, err := DecodeMBType(r, pc)
			if err != nil {
				t.Fatalf("%s #%d: %v", pc, i, err)
			}
			if got != want {
				t.Fatalf("%s #%d: got %+v want %+v", pc, i, got, want)
			}
		}
	}
}

func TestMBTypeInvalid(t *testing.T) {
	var w bits.Writer
	if err := EncodeMBType(&w, CodingI, MBType{Pattern: true}); err == nil {
		t.Fatal("pattern-only type is not codable in I pictures")
	}
	if err := EncodeMBType(&w, PictureCoding(7), MBType{Intra: true}); err == nil {
		t.Fatal("bad picture coding type must fail")
	}
	if _, err := DecodeMBType(bits.NewReader([]byte{0}), PictureCoding(0)); err == nil {
		t.Fatal("bad picture coding type must fail on decode")
	}
}

func TestCBPRoundTripAll(t *testing.T) {
	var w bits.Writer
	for v := 0; v <= 63; v++ {
		if err := EncodeCBP(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := bits.NewReader(w.Bytes())
	for v := 0; v <= 63; v++ {
		got, err := DecodeCBP(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("cbp got %d want %d", got, v)
		}
	}
	if err := EncodeCBP(&w, 64); err == nil {
		t.Fatal("cbp 64 must fail")
	}
}

func TestMotionCodeRoundTripAll(t *testing.T) {
	var w bits.Writer
	for v := -16; v <= 16; v++ {
		if err := EncodeMotionCode(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := bits.NewReader(w.Bytes())
	for v := -16; v <= 16; v++ {
		got, err := DecodeMotionCode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("motion got %d want %d", got, v)
		}
	}
	if err := EncodeMotionCode(&w, 17); err == nil {
		t.Fatal("motion 17 must fail")
	}
}

func TestDCDifferentialRoundTrip(t *testing.T) {
	for _, luma := range []bool{true, false} {
		var w bits.Writer
		var vals []int32
		for d := int32(-2047); d <= 2047; d += 13 {
			vals = append(vals, d)
		}
		vals = append(vals, 0, 1, -1, 2047, -2047)
		for _, d := range vals {
			if err := EncodeDCDifferential(&w, d, luma); err != nil {
				t.Fatal(err)
			}
		}
		r := bits.NewReader(w.Bytes())
		for _, d := range vals {
			got, err := DecodeDCDifferential(r, luma)
			if err != nil {
				t.Fatal(err)
			}
			if got != d {
				t.Fatalf("luma=%v: got %d want %d", luma, got, d)
			}
		}
	}
}

func TestDCDifferentialTooLarge(t *testing.T) {
	var w bits.Writer
	if err := EncodeDCDifferential(&w, 4096, true); err == nil {
		t.Fatal("oversized DC differential must fail")
	}
}

func TestCoefRoundTripExhaustiveVLC(t *testing.T) {
	// Every pair that has a VLC round-trips through it, both signs.
	for _, tableOne := range []bool{false, true} {
		tab := selectDCT(tableOne, false)
		for sym := range tab.enc {
			run, level := int(sym>>12), sym&0xFFF
			for _, sgn := range []int32{1, -1} {
				var w bits.Writer
				if err := EncodeCoef(&w, tableOne, false, run, sgn*level); err != nil {
					t.Fatal(err)
				}
				EncodeEOB(&w, tableOne)
				r := bits.NewReader(w.Bytes())
				gr, gl, eob, err := DecodeCoef(r, tableOne, false)
				if err != nil || eob {
					t.Fatalf("tableOne=%v (%d,%d): err=%v eob=%v", tableOne, run, sgn*level, err, eob)
				}
				if gr != run || gl != sgn*level {
					t.Fatalf("tableOne=%v: got (%d,%d) want (%d,%d)", tableOne, gr, gl, run, sgn*level)
				}
				_, _, eob, err = DecodeCoef(r, tableOne, false)
				if err != nil || !eob {
					t.Fatalf("expected EOB, err=%v", err)
				}
			}
		}
	}
}

func TestCoefEscape(t *testing.T) {
	var w bits.Writer
	cases := []struct {
		run   int
		level int32
	}{
		{0, 41}, {0, 2047}, {0, -2047}, {5, 100}, {63, 1}, {63, -1}, {20, -3},
	}
	for _, c := range cases {
		if err := EncodeCoef(&w, false, false, c.run, c.level); err != nil {
			t.Fatal(err)
		}
	}
	r := bits.NewReader(w.Bytes())
	for _, c := range cases {
		gr, gl, eob, err := DecodeCoef(r, false, false)
		if err != nil || eob {
			t.Fatalf("err=%v eob=%v", err, eob)
		}
		if gr != c.run || gl != c.level {
			t.Fatalf("got (%d,%d) want (%d,%d)", gr, gl, c.run, c.level)
		}
	}
}

func TestCoefFirstConvention(t *testing.T) {
	// First (0,1) in a non-intra block is the single bit '1'.
	var w bits.Writer
	if err := EncodeCoef(&w, false, true, 0, 1); err != nil {
		t.Fatal(err)
	}
	// 1 bit code + 1 sign bit = 2 bits.
	if w.BitsWritten() != 2 {
		t.Fatalf("first (0,1) used %d bits, want 2", w.BitsWritten())
	}
	r := bits.NewReader(w.Bytes())
	run, level, eob, err := DecodeCoef(r, false, true)
	if err != nil || eob || run != 0 || level != 1 {
		t.Fatalf("got run=%d level=%d eob=%v err=%v", run, level, eob, err)
	}

	// As a non-first coefficient it takes 2+1 bits and '10' means EOB.
	w.Reset()
	if err := EncodeCoef(&w, false, false, 0, 1); err != nil {
		t.Fatal(err)
	}
	if w.BitsWritten() != 3 {
		t.Fatalf("next (0,1) used %d bits, want 3", w.BitsWritten())
	}
}

func TestCoefErrors(t *testing.T) {
	var w bits.Writer
	if err := EncodeCoef(&w, false, false, 0, 0); err == nil {
		t.Fatal("level 0 must fail")
	}
	if err := EncodeCoef(&w, false, false, 0, 2048); err == nil {
		t.Fatal("level 2048 must fail")
	}
	if err := EncodeCoef(&w, false, false, 64, 1); err == nil {
		t.Fatal("run 64 must fail")
	}
	// Forbidden escape level -2048 on the wire.
	w.Reset()
	escape.put(&w)
	w.Put(0, 6)
	w.Put(0x800, 12)
	if _, _, _, err := DecodeCoef(bits.NewReader(w.Bytes()), false, false); err == nil {
		t.Fatal("escape level -2048 must fail")
	}
	// Truncated stream.
	if _, _, _, err := DecodeCoef(bits.NewReader(nil), false, false); err == nil {
		t.Fatal("empty stream must fail")
	}
}

func TestCoefRandomStreamQuick(t *testing.T) {
	f := func(seed int64, tableOne bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		runs := make([]int, n)
		levels := make([]int32, n)
		var w bits.Writer
		for i := 0; i < n; i++ {
			runs[i] = rng.Intn(64)
			for levels[i] == 0 {
				levels[i] = int32(rng.Intn(4095) - 2047)
			}
			first := i == 0 && !tableOne
			if err := EncodeCoef(&w, tableOne, first, runs[i], levels[i]); err != nil {
				return false
			}
		}
		EncodeEOB(&w, tableOne)
		r := bits.NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			first := i == 0 && !tableOne
			gr, gl, eob, err := DecodeCoef(r, tableOne, first)
			if err != nil || eob || gr != runs[i] || gl != levels[i] {
				return false
			}
		}
		_, _, eob, err := DecodeCoef(r, tableOne, false)
		return err == nil && eob
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxVLCLevel(t *testing.T) {
	if got := MaxVLCLevel(false, 0); got != 40 {
		t.Errorf("B-14 max level for run 0 = %d, want 40", got)
	}
	if got := MaxVLCLevel(false, 31); got != 1 {
		t.Errorf("B-14 max level for run 31 = %d, want 1", got)
	}
	if got := MaxVLCLevel(false, 32); got != 0 {
		t.Errorf("B-14 run 32 should have no VLC, got %d", got)
	}
}

func TestDecodeInvalidCode(t *testing.T) {
	// '00000000 00000000' is not a valid B-14 code start.
	r := bits.NewReader([]byte{0, 0, 0, 0})
	if _, _, _, err := DecodeCoef(r, false, false); err == nil {
		t.Fatal("all-zero bits must be an invalid coefficient code")
	}
	if _, err := DecodeMBAddrInc(bits.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("all-zero bits must be an invalid MBA code")
	}
}

func BenchmarkDecodeCoef(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var w bits.Writer
	const n = 4096
	for i := 0; i < n; i++ {
		lvl := int32(rng.Intn(10) + 1)
		if rng.Intn(2) == 0 {
			lvl = -lvl
		}
		if err := EncodeCoef(&w, false, false, rng.Intn(4), lvl); err != nil {
			b.Fatal(err)
		}
	}
	data := w.Bytes()
	b.ResetTimer()
	r := bits.NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			r = bits.NewReader(data)
		}
		if _, _, _, err := DecodeCoef(r, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCoef(b *testing.B) {
	var w bits.Writer
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		if err := EncodeCoef(&w, false, false, i%4, int32(i%9)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCTCoefDecode measures decoding whole coefficient blocks —
// run/level pairs until EOB, the VLD inner loop of slice decoding —
// rather than a single code like BenchmarkDecodeCoef.
func BenchmarkDCTCoefDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	var w bits.Writer
	const blocks = 512
	for i := 0; i < blocks; i++ {
		ncoef := 1 + rng.Intn(12)
		for c := 0; c < ncoef; c++ {
			lvl := int32(rng.Intn(12) + 1)
			if rng.Intn(2) == 0 {
				lvl = -lvl
			}
			if err := EncodeCoef(&w, false, c == 0, rng.Intn(5), lvl); err != nil {
				b.Fatal(err)
			}
		}
		EncodeEOB(&w, false)
	}
	data := w.Bytes()
	var r bits.Reader
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%blocks == 0 {
			r.Reset(data)
		}
		first := true
		for {
			_, _, eob, err := DecodeCoef(&r, false, first)
			if err != nil {
				b.Fatal(err)
			}
			if eob {
				break
			}
			first = false
		}
	}
}
