package vldsplit

import (
	"fmt"

	"mpeg2par/internal/bits"
	"mpeg2par/internal/mpeg2"
	"mpeg2par/internal/vlc"
)

// BuildSlice scans one slice and returns its macroblock-row split
// points: for every coded macroblock that starts a fresh row, the bit
// offset and predictive state entering it. data must be exactly the
// slice's byte range starting at the startcode; row must match the
// startcode and maxAddr is the slice's inclusive address bound (from
// the stream geometry). scratch is a recyclable macroblock buffer;
// the grown buffer is returned for reuse.
func BuildSlice(data []byte, p *mpeg2.PictureParams, row, maxAddr int, scratch []mpeg2.MB) ([]Point, []mpeg2.MB, error) {
	var r bits.Reader
	r.Reset(data)
	code, err := r.ReadStartCode()
	if err != nil {
		return nil, scratch, err
	}
	if int(code)-1 != row {
		return nil, scratch, fmt.Errorf("vldsplit: slice startcode row %d, expected %d", int(code)-1, row)
	}
	var pts []Point
	mbw := p.MBWidth
	ds, _, err := mpeg2.DecodeSliceHead(&r, p, row, maxAddr, 0, func(off int64, s mpeg2.SplitState) {
		if (s.PrevAddr+1)%mbw == 0 {
			pts = append(pts, Point{BitOff: off, State: s})
		}
	}, scratch)
	if err != nil {
		return nil, ds.MBs, err
	}
	return pts, ds.MBs, nil
}

// SelectPoints thins a slice's split points to at most parts-1 evenly
// spaced boundaries, giving parts segments of roughly equal row counts.
func SelectPoints(pts []Point, parts int) []Point {
	if parts < 2 || len(pts) == 0 {
		return nil
	}
	if len(pts) <= parts-1 {
		return pts
	}
	out := make([]Point, 0, parts-1)
	n := len(pts) + 1 // row-segments available
	for k := 1; k < parts; k++ {
		i := k*n/parts - 1
		if i < 0 {
			continue
		}
		if i >= len(pts) {
			i = len(pts) - 1
		}
		if len(out) > 0 && out[len(out)-1].BitOff >= pts[i].BitOff {
			continue
		}
		out = append(out, pts[i])
	}
	return out
}

// guessWindow bounds the number of candidate bit offsets tried per
// speculative boundary. Row sizes in a slice vary with content, so the
// scan starts a little before the even-split estimate and walks
// forward; a real boundary outside the window simply means no split.
const guessWindow = 4096

// GuessPoints proposes speculative split points for a slice with no
// index entry. It estimates where each of parts-1 row boundaries should
// fall (even byte fractions of the payload), then scans bit offsets
// near each estimate for a position that trial-parses cleanly under a
// guessed entry state: DC predictors at reset, zero motion predictors,
// the slice header's quantiser scale, and the macroblock address at a
// row boundary. The guesses are unverified by construction — the
// decoder's verify rule accepts them only if the sequential chain of
// segment states matches exactly, so a wrong guess costs a fallback,
// never wrong pixels.
func GuessPoints(data []byte, p *mpeg2.PictureParams, row, maxAddr, parts int, scratch []mpeg2.MB) ([]Point, []mpeg2.MB) {
	mbw := p.MBWidth
	spanRows := maxAddr/mbw - row + 1
	if parts > spanRows {
		parts = spanRows
	}
	if parts < 2 {
		return nil, scratch
	}
	var r bits.Reader
	r.Reset(data)
	if _, err := r.ReadStartCode(); err != nil {
		return nil, scratch
	}
	qs := int(r.Read(5))
	if qs < 1 {
		return nil, scratch
	}
	for r.ReadBit() { // extra_information_slice
		r.Skip(8)
	}
	hdrEnd := r.BitPos()
	payload := int64(len(data))*8 - hdrEnd
	if payload <= 0 {
		return nil, scratch
	}

	entry := mpeg2.SplitState{QScale: qs}
	entry.DCPred = resetDCPred(p.IntraDCPrecision)

	var pts []Point
	for k := 1; k < parts; k++ {
		boundaryRow := row + k*spanRows/parts
		if boundaryRow <= row || boundaryRow*mbw-1 >= maxAddr {
			continue
		}
		entry.PrevAddr = boundaryRow*mbw - 1
		// The probe is confined to the boundary row: a candidate whose
		// first macroblock lands past it cannot be this row's boundary.
		probeMax := boundaryRow*mbw + mbw - 1
		if probeMax > maxAddr {
			probeMax = maxAddr
		}
		target := hdrEnd + int64(k)*payload/int64(parts)
		start := target - 256
		if len(pts) > 0 && start <= pts[len(pts)-1].BitOff {
			start = pts[len(pts)-1].BitOff + 1
		}
		if start < hdrEnd {
			start = hdrEnd
		}
		end := target + guessWindow
		if max := int64(len(data))*8 - 24; end > max {
			end = max
		}
		for off := start; off < end; off++ {
			r.SeekBit(off)
			// One-load prefilter: a resync point must start with a valid
			// macroblock_address_increment code, which 11 bits decide.
			if !vlc.ValidMBAddrIncPrefix(r.Peek(11)) {
				continue
			}
			var err error
			scratch, err = mpeg2.ProbeSliceSegment(&r, p, entry, probeMax, 2, scratch)
			if err != nil {
				continue
			}
			pts = append(pts, Point{BitOff: off, State: entry})
			break
		}
	}
	return pts, scratch
}

// resetDCPred returns the intra DC predictors at their reset value for
// the given intra_dc_precision (§7.2.1).
func resetDCPred(prec int) [3]int32 {
	v := int32(1) << (uint(prec) + 7)
	return [3]int32{v, v, v}
}
