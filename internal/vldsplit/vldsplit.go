// Package vldsplit implements the intra-slice parallel entropy-decode
// side channel: a compact index of macroblock-row split points inside a
// slice. Slice-level parallelism collapses on streams coded with one
// slice per picture — the VLD is a serial chain of variable-length
// codes. A split point breaks the chain by recording, for a macroblock
// boundary inside the slice, the exact bit offset and the predictive
// VLD state there (mpeg2.SplitState); the decoder can then fan one tall
// slice across the worker pool as independent row-segments and verify
// at the joins that every segment stopped exactly where the next one
// started, bit-exact against a sequential decode.
//
// Index entries are keyed by slice content (an FNV-64a hash plus the
// byte length), not by stream position, so an index built once keeps
// working when the stream is re-chunked, re-muxed, or decoded through
// the streaming path where byte offsets are rebased per GOP.
package vldsplit

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"mpeg2par/internal/mpeg2"
)

// Point is one split point inside a slice: the next coded macroblock
// starts at bit offset BitOff (relative to the first byte of the slice
// startcode) and must be decoded under exactly State.
type Point struct {
	BitOff int64
	State  mpeg2.SplitState
}

// SliceKey identifies a slice by its payload content.
type SliceKey struct {
	Hash uint64 // FNV-64a over the slice's bytes, startcode included
	Len  int    // byte length of the slice
}

// KeyOf hashes a slice's byte range (startcode through last payload
// byte) into its index key.
func KeyOf(data []byte) SliceKey {
	h := fnv.New64a()
	h.Write(data)
	return SliceKey{Hash: h.Sum64(), Len: len(data)}
}

// Index maps slice content to its split points. The zero value is not
// usable; call NewIndex. An Index is safe for concurrent readers once
// built (Lookup only); Add and UnmarshalBinary must not race with use.
type Index struct {
	m map[SliceKey][]Point
}

// NewIndex returns an empty split index.
func NewIndex() *Index {
	return &Index{m: make(map[SliceKey][]Point)}
}

// validatePoints checks the structural invariants of a slice's split
// points: strictly increasing bit offsets inside the slice, strictly
// increasing macroblock addresses, and legal quantiser scale codes.
// Semantic validity (that the state really is the sequential decoder's
// state at that offset) is established at decode time by the verify
// rule, so even a structurally valid but wrong ("poisoned") index can
// never change decoded pixels.
func validatePoints(pts []Point, byteLen int) error {
	prevBit := int64(0)
	prevAddr := -1
	for i, pt := range pts {
		if pt.BitOff <= prevBit || pt.BitOff >= int64(byteLen)*8 {
			return fmt.Errorf("vldsplit: point %d bit offset %d out of order or range", i, pt.BitOff)
		}
		if pt.State.PrevAddr <= prevAddr || pt.State.PrevAddr < 0 {
			return fmt.Errorf("vldsplit: point %d address %d not increasing", i, pt.State.PrevAddr)
		}
		if pt.State.QScale < 1 || pt.State.QScale > 31 {
			return fmt.Errorf("vldsplit: point %d quantiser scale %d out of range", i, pt.State.QScale)
		}
		prevBit, prevAddr = pt.BitOff, pt.State.PrevAddr
	}
	return nil
}

// Add records the split points for the slice with the given bytes.
// Points must be ordered; a slice with no points is not recorded.
func (ix *Index) Add(data []byte, pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	if err := validatePoints(pts, len(data)); err != nil {
		return err
	}
	ix.m[KeyOf(data)] = append([]Point(nil), pts...)
	return nil
}

// Lookup returns the split points recorded for the slice with the given
// bytes, or nil. The returned slice must not be modified.
func (ix *Index) Lookup(data []byte) []Point {
	if ix == nil || ix.m == nil {
		return nil
	}
	return ix.m[KeyOf(data)]
}

// Slices returns the number of indexed slices.
func (ix *Index) Slices() int {
	if ix == nil {
		return 0
	}
	return len(ix.m)
}

// Points returns the total number of split points across all slices.
func (ix *Index) Points() int {
	if ix == nil {
		return 0
	}
	n := 0
	for _, pts := range ix.m {
		n += len(pts)
	}
	return n
}

// Binary format: an 8-byte magic+version, a slice count, then per slice
// the key and its points. All integers are fixed-width big-endian — the
// index is a side-channel meant to live next to the stream file, so the
// format is deliberately boring.
const (
	indexMagic   = "MP2VSIX\x01"
	pointSize    = 8 + 4 + 1 + 1 + 3*4 + 8*4 // BitOff, PrevAddr, QScale, flags, DCPred, PMV
	maxSlicePts  = 1 << 16
	maxIdxSlices = 1 << 24
)

// MarshalBinary serializes the index. Slices are emitted in a
// deterministic (key-sorted) order so equal indexes marshal equal.
func (ix *Index) MarshalBinary() ([]byte, error) {
	keys := make([]SliceKey, 0, len(ix.m))
	for k := range ix.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Hash != keys[j].Hash {
			return keys[i].Hash < keys[j].Hash
		}
		return keys[i].Len < keys[j].Len
	})
	out := make([]byte, 0, len(indexMagic)+4+len(keys)*(16+pointSize))
	out = append(out, indexMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		pts := ix.m[k]
		if len(pts) > maxSlicePts {
			return nil, fmt.Errorf("vldsplit: %d split points in one slice", len(pts))
		}
		out = binary.BigEndian.AppendUint64(out, k.Hash)
		out = binary.BigEndian.AppendUint32(out, uint32(k.Len))
		out = binary.BigEndian.AppendUint32(out, uint32(len(pts)))
		for _, pt := range pts {
			out = binary.BigEndian.AppendUint64(out, uint64(pt.BitOff))
			out = binary.BigEndian.AppendUint32(out, uint32(pt.State.PrevAddr))
			flags := byte(0)
			if pt.State.PrevFwd {
				flags |= 1
			}
			if pt.State.PrevBwd {
				flags |= 2
			}
			out = append(out, byte(pt.State.QScale), flags)
			for _, v := range pt.State.DCPred {
				out = binary.BigEndian.AppendUint32(out, uint32(v))
			}
			for r := 0; r < 2; r++ {
				for d := 0; d < 2; d++ {
					for c := 0; c < 2; c++ {
						out = binary.BigEndian.AppendUint32(out, uint32(int32(pt.State.PMV[r][d][c])))
					}
				}
			}
		}
	}
	return out, nil
}

// UnmarshalBinary replaces the index contents with the serialized form,
// validating structure as it reads. A structurally valid but
// semantically wrong index is harmless: the decoder's verify rule
// rejects any split whose segment states do not chain exactly.
func (ix *Index) UnmarshalBinary(b []byte) error {
	if len(b) < len(indexMagic)+4 || string(b[:len(indexMagic)]) != indexMagic {
		return fmt.Errorf("vldsplit: not a split index (bad magic)")
	}
	b = b[len(indexMagic):]
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > maxIdxSlices {
		return fmt.Errorf("vldsplit: implausible slice count %d", n)
	}
	m := make(map[SliceKey][]Point, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 16 {
			return fmt.Errorf("vldsplit: truncated index")
		}
		key := SliceKey{Hash: binary.BigEndian.Uint64(b), Len: int(binary.BigEndian.Uint32(b[8:]))}
		np := binary.BigEndian.Uint32(b[12:])
		b = b[16:]
		if np == 0 || np > maxSlicePts {
			return fmt.Errorf("vldsplit: slice %d has implausible point count %d", i, np)
		}
		if len(b) < int(np)*pointSize {
			return fmt.Errorf("vldsplit: truncated index")
		}
		pts := make([]Point, np)
		for j := range pts {
			pt := &pts[j]
			pt.BitOff = int64(binary.BigEndian.Uint64(b))
			pt.State.PrevAddr = int(int32(binary.BigEndian.Uint32(b[8:])))
			pt.State.QScale = int(b[12])
			flags := b[13]
			pt.State.PrevFwd = flags&1 != 0
			pt.State.PrevBwd = flags&2 != 0
			b = b[14:]
			for c := range pt.State.DCPred {
				pt.State.DCPred[c] = int32(binary.BigEndian.Uint32(b))
				b = b[4:]
			}
			for r := 0; r < 2; r++ {
				for d := 0; d < 2; d++ {
					for c := 0; c < 2; c++ {
						pt.State.PMV[r][d][c] = int(int32(binary.BigEndian.Uint32(b)))
						b = b[4:]
					}
				}
			}
		}
		if err := validatePoints(pts, key.Len); err != nil {
			return err
		}
		if _, dup := m[key]; dup {
			return fmt.Errorf("vldsplit: duplicate slice key in index")
		}
		m[key] = pts
	}
	if len(b) != 0 {
		return fmt.Errorf("vldsplit: %d trailing bytes after index", len(b))
	}
	ix.m = m
	return nil
}
