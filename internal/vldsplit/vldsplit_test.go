package vldsplit

import (
	"bytes"
	"testing"

	"mpeg2par/internal/mpeg2"
)

func pt(off int64, addr, qs int) Point {
	return Point{BitOff: off, State: mpeg2.SplitState{PrevAddr: addr, QScale: qs}}
}

func TestIndexRoundTrip(t *testing.T) {
	ix := NewIndex()
	a := []byte{0, 0, 1, 1, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60}
	b := []byte{0, 0, 1, 2, 0x11, 0x21, 0x31, 0x41, 0x51, 0x61}
	ptsA := []Point{pt(40, 5, 8), pt(56, 11, 8)}
	ptsA[1].State.DCPred = [3]int32{128, 256, 512}
	ptsA[1].State.PMV[0][0][0] = -7
	ptsA[1].State.PrevFwd = true
	if err := ix.Add(a, ptsA); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(b, []Point{pt(33, 3, 31)}); err != nil {
		t.Fatal(err)
	}
	raw, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := NewIndex()
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got.Slices() != 2 || got.Points() != 3 {
		t.Fatalf("round trip: %d slices %d points, want 2/3", got.Slices(), got.Points())
	}
	ga := got.Lookup(a)
	if len(ga) != 2 || ga[0] != ptsA[0] || ga[1] != ptsA[1] {
		t.Fatalf("slice A points %+v, want %+v", ga, ptsA)
	}
	// Determinism: equal indexes marshal equal.
	raw2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("marshal is not deterministic")
	}
}

func TestAddRejectsInvalidPoints(t *testing.T) {
	data := make([]byte, 16)
	cases := []struct {
		name string
		pts  []Point
	}{
		{"zero offset", []Point{pt(0, 3, 8)}},
		{"offset past end", []Point{pt(16*8, 3, 8)}},
		{"offsets out of order", []Point{pt(40, 3, 8), pt(40, 7, 8)}},
		{"addresses not increasing", []Point{pt(40, 5, 8), pt(48, 5, 8)}},
		{"negative address", []Point{pt(40, -1, 8)}},
		{"qscale zero", []Point{pt(40, 3, 0)}},
		{"qscale too big", []Point{pt(40, 3, 32)}},
	}
	for _, tc := range cases {
		ix := NewIndex()
		if err := ix.Add(data, tc.pts); err == nil {
			t.Errorf("%s: Add accepted invalid points", tc.name)
		}
	}
	// Empty points are silently skipped, not recorded.
	ix := NewIndex()
	if err := ix.Add(data, nil); err != nil {
		t.Fatal(err)
	}
	if ix.Slices() != 0 {
		t.Fatal("empty point list was recorded")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	ix := NewIndex()
	data := make([]byte, 32)
	if err := ix.Add(data, []Point{pt(40, 3, 8), pt(80, 7, 9)}); err != nil {
		t.Fatal(err)
	}
	raw, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := func(name string, mut []byte) {
		t.Helper()
		if err := NewIndex().UnmarshalBinary(mut); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupt input", name)
		}
	}
	bad("empty", nil)
	bad("bad magic", append([]byte("NOTANIDX"), raw[8:]...))
	bad("truncated", raw[:len(raw)-5])
	bad("trailing bytes", append(append([]byte(nil), raw...), 0))
	// Corrupt a point's quantiser-scale byte: validation must catch it.
	mut := append([]byte(nil), raw...)
	// Layout after the 8-byte magic: 4-byte slice count, then per slice
	// 8+4 key bytes, 4-byte point count, then points (BitOff 8, PrevAddr
	// 4, QScale 1, ...). Zero the first point's QScale.
	qsOff := 8 + 4 + 8 + 4 + 4 + 8 + 4
	mut[qsOff] = 0
	bad("invalid qscale", mut)
}

func TestSelectPoints(t *testing.T) {
	mk := func(n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = pt(int64(40+8*i), i, 8)
		}
		return pts
	}
	if got := SelectPoints(mk(10), 1); got != nil {
		t.Fatalf("parts=1 selected %d points, want none", len(got))
	}
	if got := SelectPoints(nil, 4); got != nil {
		t.Fatal("no candidates must select nothing")
	}
	// Fewer candidates than needed: keep them all.
	if got := SelectPoints(mk(2), 4); len(got) != 2 {
		t.Fatalf("2 candidates at parts=4: selected %d, want 2", len(got))
	}
	// Plenty of candidates: exactly parts-1 boundaries, strictly ordered,
	// roughly even.
	got := SelectPoints(mk(15), 4)
	if len(got) != 3 {
		t.Fatalf("selected %d points, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].BitOff <= got[i-1].BitOff {
			t.Fatal("selected points not strictly ordered")
		}
	}
	// 16 row-segments over 4 parts: boundaries after rows 4, 8, 12 —
	// candidate indices 3, 7, 11.
	for i, want := range []int{3, 7, 11} {
		if got[i].State.PrevAddr != want {
			t.Fatalf("boundary %d at candidate %d, want %d", i, got[i].State.PrevAddr, want)
		}
	}
}
