// Package mpeg2par is a software MPEG-2 video decoder parallelized two
// ways — coarse-grained across groups of pictures and fine-grained across
// slices — reproducing Bilas, Fritts & Singh, "Real-Time Parallel MPEG-2
// Decoding in Software" (IPPS 1997).
//
// The package bundles everything the paper's evaluation needs:
//
//   - a from-scratch MPEG-2 Main Profile codec (encoder + decoder), used
//     to regenerate the paper's synthetic test streams at any resolution
//     and GOP size;
//   - the parallel decoder core: scan process, GOP-level and slice-level
//     (simple and improved) worker pools, and a reordering display
//     process;
//   - a deterministic discrete-event simulator that replays measured task
//     costs under any number of workers, reproducing the 16-processor
//     results of the paper on hosts with fewer cores;
//   - a multiprocessor cache simulator fed by the decoder's memory
//     reference trace, for the spatial/temporal locality study;
//   - the analytical memory model of the GOP-level decoder.
//
// Quick start:
//
//	stream, _ := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
//		Width: 352, Height: 240, Pictures: 13, GOPSize: 13,
//	})
//	stats, _ := mpeg2par.Decode(context.Background(),
//		mpeg2par.FromBytes(stream.Data),
//		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
//		mpeg2par.WithWorkers(4),
//	)
//	fmt.Println(stats.PicturesPerSecond())
//
// Decode streams its source through an incremental scan process, so a
// FromReader source of any length decodes in bounded memory; cancel the
// context to tear the pipeline down mid-stream.
package mpeg2par

import (
	"context"
	"io"

	"mpeg2par/internal/cachesim"
	"mpeg2par/internal/core"
	"mpeg2par/internal/decoder"
	"mpeg2par/internal/encoder"
	"mpeg2par/internal/faults"
	"mpeg2par/internal/frame"
	"mpeg2par/internal/memmodel"
	"mpeg2par/internal/memtrace"
	"mpeg2par/internal/obs"
	"mpeg2par/internal/simsched"
	"mpeg2par/internal/stream"
	"mpeg2par/internal/vldsplit"
)

// Frame is one decoded picture in planar YCbCr 4:2:0.
type Frame = frame.Frame

// Synth is the deterministic synthetic video source (the flower-garden
// stand-in).
type Synth = frame.Synth

// NewSynth returns a synthetic video source for width×height pictures.
func NewSynth(width, height int) *Synth { return frame.NewSynth(width, height) }

// InterlacedSynth renders the synthetic scene with temporally offset
// fields — the source material for the interlaced coding tools.
type InterlacedSynth = frame.InterlacedSynth

// NewInterlacedSynth returns an interlaced synthetic source.
func NewInterlacedSynth(width, height int) *InterlacedSynth {
	return frame.NewInterlacedSynth(width, height)
}

// PSNR returns the luma peak signal-to-noise ratio between two frames.
func PSNR(a, b *Frame) float64 { return frame.PSNR(a, b) }

// --- stream generation -----------------------------------------------------

// StreamConfig selects the encoder parameters for a generated test stream.
type StreamConfig = encoder.Config

// Stream is an encoded MPEG-2 elementary stream plus its metadata.
type Stream = encoder.Result

// PictureInfo describes one encoded picture.
type PictureInfo = encoder.PictureInfo

// GenerateStream encodes a synthetic scene with the given configuration,
// reproducing the paper's methodology of synthesizing test streams at
// chosen resolutions and GOP sizes.
func GenerateStream(cfg StreamConfig) (*Stream, error) {
	return encoder.EncodeSequence(cfg, frame.NewSynth(cfg.Width, cfg.Height))
}

// EncodeFrames encodes pictures from an arbitrary source (display order).
func EncodeFrames(cfg StreamConfig, src func(n int) *Frame) (*Stream, error) {
	return encoder.EncodeSequence(cfg, sourceFunc(src))
}

type sourceFunc func(n int) *Frame

func (f sourceFunc) Frame(n int) *Frame { return f(n) }

// --- sequential decoding ----------------------------------------------------

// Decoder decodes a stream sequentially, returning frames in display
// order — the baseline of every speedup measurement.
type Decoder = decoder.Decoder

// NewDecoder returns a sequential decoder over data.
func NewDecoder(data []byte) (*Decoder, error) { return decoder.New(data) }

// DecodeAll decodes the whole stream sequentially.
//
// Deprecated: use Decode with WithMode(ModeSequential), WithWorkers(1),
// and a FrameSink; it adds context cancellation and bounded memory.
func DecodeAll(data []byte) ([]*Frame, error) {
	d, err := decoder.New(data)
	if err != nil {
		return nil, err
	}
	return d.All()
}

// --- parallel decoding -------------------------------------------------------

// Mode selects the parallelization strategy.
type Mode = core.Mode

// The decoder variants the paper evaluates, plus the single-worker
// planned executor the resilient modes are verified against, plus the
// cost-model-driven automatic mode (see WithAutoTune).
const (
	ModeGOP           = core.ModeGOP
	ModeSliceSimple   = core.ModeSliceSimple
	ModeSliceImproved = core.ModeSliceImproved
	ModeSequential    = core.ModeSequential
	ModeAuto          = core.ModeAuto
)

// Packing selects the order the scheduler hands tasks to the worker
// pool; every packing produces bit-identical output.
type Packing = core.Packing

// The task-queue packing disciplines. PackLPT (the default) packs
// longest-first by byte-size cost; the rest exist for measurement and
// the ordering-invariance tests.
const (
	PackLPT     = core.PackLPT
	PackFIFO    = core.PackFIFO
	PackReverse = core.PackReverse
	PackRandom  = core.PackRandom
)

// Affinity selects row→worker task steering in the slice task queue;
// every affinity produces bit-identical output.
type Affinity = core.Affinity

// The task-steering disciplines. AffinityRow (the default) steers each
// macroblock row to the worker that handled that row of the reference
// picture; AffinityNone is the paper's pure dynamic assignment.
const (
	AffinityRow  = core.AffinityRow
	AffinityNone = core.AffinityNone
)

// AutoDecision records how a ModeAuto run resolved (Stats.Auto).
type AutoDecision = core.AutoDecision

// Resilience selects how the decoder reacts to damaged streams; every
// policy produces bit-identical output in all decode modes.
type Resilience = core.Resilience

// The resilience policy ladder, most to least strict.
const (
	FailFast       = core.FailFast
	ConcealSlice   = core.ConcealSlice
	ConcealPicture = core.ConcealPicture
	DropGOP        = core.DropGOP
)

// ParseResilience reads a policy name ("failfast", "conceal-slice",
// "conceal-picture", "drop-gop" and short aliases).
func ParseResilience(s string) (Resilience, error) { return core.ParseResilience(s) }

// ErrorStats counts the damage a resilient decode recovered from.
type ErrorStats = core.ErrorStats

// ShedStats counts pictures sacrificed by the multi-stream service's
// graceful-degradation ladder (Stats.Shed) — strictly disjoint from
// ErrorStats: a shed picture is never also counted as a decode error.
type ShedStats = core.ShedStats

// ShedLevel is the service ladder's load-shedding level.
type ShedLevel = core.ShedLevel

// The shedding levels: none, B pictures, B and P pictures.
const (
	ShedNone = core.ShedNone
	ShedB    = core.ShedB
	ShedRef  = core.ShedRef
)

// FaultSpec describes one deterministic stream corruption.
type FaultSpec = faults.Spec

// FaultReport summarizes the corruption an injection applied.
type FaultReport = faults.Report

// ParseFaultSpec reads a fault spec such as "bitflip:8" or
// "gilbert:loss=0.02,burst=4,pkt=188" (see internal/faults).
func ParseFaultSpec(s string) (FaultSpec, error) { return faults.Parse(s) }

// Options configures a parallel decode.
type Options = core.Options

// Stats reports a parallel decode run.
type Stats = core.Stats

// WorkerStats is one worker's time breakdown.
type WorkerStats = core.WorkerStats

// StreamMap is the scan process's structural index of a stream.
type StreamMap = core.StreamMap

// Scan indexes a stream by startcodes (the scan process's job).
//
// Deprecated: use ScanReader, which scans incrementally from any
// io.Reader (wrap in-memory data with bytes.NewReader) and produces
// the identical StreamMap.
func Scan(data []byte) (*StreamMap, error) { return core.Scan(data) }

// ScanReader indexes a stream incrementally from r, reading chunkSize
// bytes at a time (0 selects the default). For the same bytes the
// resulting map is identical to Scan's, whatever the chunk size.
func ScanReader(r io.Reader, chunkSize int) (*StreamMap, error) {
	return stream.ScanReader(r, chunkSize, false)
}

// DecodeParallel runs the parallel decoder over a fully materialized
// stream: scan first, then decode.
//
// Deprecated: use Decode, the streaming context-first API — it produces
// bit-identical output in every mode and policy, overlaps scanning with
// decoding, bounds memory by the scan-ahead window, and supports
// cancellation. DecodeParallel remains for profiling (Options.Profile)
// and pre-scanned sweeps.
func DecodeParallel(data []byte, opt Options) (*Stats, error) {
	return core.Decode(data, opt)
}

// --- intra-slice split decode ---------------------------------------------------

// Index is a split index: a side channel of verified resynchronization
// points inside individual slices (bit offset plus the full predictor
// state at that point), keyed by slice content so it survives stream
// repackaging. With WithIndex, the parallel decoder fans a single large
// slice out across the worker pool as independent macroblock-row
// segments, bit-exact against the sequential decode. Build one with
// BuildIndex and persist it with MarshalBinary/UnmarshalBinary.
type Index = vldsplit.Index

// NewIndex returns an empty split index, ready for UnmarshalBinary.
func NewIndex() *Index { return vldsplit.NewIndex() }

// SplitStats counts intra-slice split-decode activity (Stats.Split):
// slices fanned out, segments run, entry-state verifications, and
// sequential fallbacks. Disjoint from ErrorStats — a failed split is
// re-decoded sequentially, never reported as stream damage.
type SplitStats = core.SplitStats

// ErrBadOption is wrapped by every option-validation failure across the
// decode entry points; the message names the offending option. Test
// with errors.Is(err, ErrBadOption).
var ErrBadOption = core.ErrBadOption

// BuildIndex scans src and records intra-slice split points for every
// slice spanning at least two macroblock rows: one sequential
// entropy-decode pass per slice, capturing the bit offset and predictor
// state at each row boundary. The returned index feeds WithIndex; it is
// keyed by slice content, so it remains valid when the same elementary
// stream is decoded from a different container or offset.
func BuildIndex(ctx context.Context, src Source) (*Index, error) {
	data, err := io.ReadAll(src.r)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := core.Scan(data)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.BuildIndexScanned(data, m)
}

// --- timeline observability ----------------------------------------------------

// TraceRecorder collects scheduling events from every process of a
// decode into per-lane ring buffers (see WithTrace). The zero value is
// not usable; construct with NewTraceRecorder.
type TraceRecorder = obs.Tracer

// NewTraceRecorder returns a timeline recorder. laneCap bounds the
// events kept per lane (scan, each worker, display); zero selects the
// default (8192). When a lane overflows, the oldest events are dropped
// and counted in Timeline.Dropped.
func NewTraceRecorder(laneCap int) *TraceRecorder { return obs.New(laneCap) }

// Timeline is a recorded decode schedule: every event from every lane,
// merged in start order. Export it with WriteChromeTrace (load the JSON
// in Perfetto or chrome://tracing) or reduce it with Summary.
type Timeline = obs.Timeline

// TimelineEvent is one recorded scheduling event (task span, queue or
// barrier wait, scan, feed, or display instant).
type TimelineEvent = obs.Event

// TimelineSummary is the derived load-balance report: per-worker
// utilization, barrier- and queue-wait histograms, imbalance factor,
// and synchronization-overhead fraction.
type TimelineSummary = obs.Summary

// --- deterministic simulation -------------------------------------------------

// SimResult is one simulated parallel execution.
type SimResult = simsched.Result

// SimPicture and GOPTask describe profiled workloads for the simulator.
type (
	SimPicture = simsched.SimPicture
	GOPTask    = simsched.GOPTask
)

// DSMConfig models a distributed-shared-memory machine (§7.2).
type DSMConfig = simsched.DSMConfig

// ProfileSlices measures per-slice decode costs with one worker and
// returns the simulator workload.
func ProfileSlices(data []byte) ([]SimPicture, error) {
	st, err := core.Decode(data, core.Options{Mode: core.ModeSliceImproved, Workers: 1, Profile: true})
	if err != nil {
		return nil, err
	}
	return SliceProfileToSim(st.SliceProf), nil
}

// SliceProfileToSim converts a core profile into simulator pictures.
func SliceProfileToSim(prof []core.PicProfile) []SimPicture {
	pics := make([]SimPicture, len(prof))
	for i, p := range prof {
		pics[i] = simsched.SimPicture{
			Ref:        p.Ref,
			Intra:      p.Type == 'I',
			DisplayIdx: p.DisplayIdx,
			SliceCosts: p.SliceCosts,
		}
	}
	return pics
}

// ProfileGOPs measures per-GOP decode costs with one worker and returns
// the simulator workload (tasks available immediately, like the paper's
// assumption that the scan keeps ahead).
func ProfileGOPs(data []byte) ([]GOPTask, error) {
	m, err := core.Scan(data)
	if err != nil {
		return nil, err
	}
	st, err := core.DecodeScanned(data, m, core.Options{Mode: core.ModeGOP, Workers: 1, Profile: true})
	if err != nil {
		return nil, err
	}
	tasks := make([]GOPTask, len(st.GOPCosts))
	for i, c := range st.GOPCosts {
		tasks[i] = simsched.GOPTask{Cost: c.Cost, Pictures: len(m.GOPs[i].Pictures)}
	}
	return tasks, nil
}

// SimulateGOP replays GOP tasks under P simulated workers.
func SimulateGOP(tasks []GOPTask, workers int) SimResult {
	return simsched.SimulateGOP(tasks, workers)
}

// SimulateSlices replays slice tasks under P simulated workers with the
// simple (barrier every picture) or improved (barrier after references)
// discipline.
func SimulateSlices(pics []SimPicture, workers int, improved bool) SimResult {
	return simsched.SimulateSlices(pics, workers, improved)
}

// SimulateSlicesDSM replays slice tasks on the distributed-memory model.
func SimulateSlicesDSM(pics []SimPicture, workers int, improved bool, cfg DSMConfig) SimResult {
	return simsched.SimulateSlicesDSM(pics, workers, improved, cfg)
}

// SimulateSlicesMax replays slice tasks under the maximum-concurrency
// discipline the paper sketched but did not build: no picture barriers,
// only slice-level data dependencies (a slice waits for the reference
// slices within ±vrange rows).
func SimulateSlicesMax(pics []SimPicture, workers, vrange int) SimResult {
	return simsched.SimulateSlicesMax(pics, workers, vrange)
}

// SimulateGOPDSMQueues replays GOP tasks on the distributed-memory model
// with the paper's §7.2 remedy: per-cluster task queues, round-robin GOP
// placement, and stealing.
func SimulateGOPDSMQueues(tasks []GOPTask, workers int, cfg DSMConfig) SimResult {
	return simsched.SimulateGOPDSMQueues(tasks, workers, cfg)
}

// --- locality study -------------------------------------------------------------

// TraceEvent is one memory-reference extent from the decoder.
type TraceEvent = memtrace.Event

// CacheConfig describes the simulated per-processor caches.
type CacheConfig = cachesim.Config

// CacheStats are the simulated miss counters.
type CacheStats = cachesim.Stats

// TraceDecode decodes the stream under the given mode and worker count,
// recording the reconstruction memory-reference stream.
func TraceDecode(data []byte, mode Mode, workers int) ([]TraceEvent, error) {
	rec := memtrace.NewRecorder()
	if _, err := core.Decode(data, core.Options{Mode: mode, Workers: workers, Tracer: rec}); err != nil {
		return nil, err
	}
	return rec.Events(), nil
}

// SimulateCache runs a trace through the configured memory system.
func SimulateCache(events []TraceEvent, cfg CacheConfig) (CacheStats, error) {
	sim, err := cachesim.New(cfg)
	if err != nil {
		return CacheStats{}, err
	}
	if err := sim.Run(events); err != nil {
		return CacheStats{}, err
	}
	return sim.Stats(), nil
}

// --- memory model ------------------------------------------------------------------

// MemModel parameterizes the analytical GOP-decoder memory model.
type MemModel = memmodel.Params

// MemPoint is one instant of the modeled memory usage.
type MemPoint = memmodel.Point
