package mpeg2par_test

import (
	"sync"
	"testing"

	"mpeg2par"
)

var (
	streamOnce sync.Once
	stream     *mpeg2par.Stream
	streamErr  error
)

func testStream(t testing.TB) *mpeg2par.Stream {
	t.Helper()
	streamOnce.Do(func() {
		stream, streamErr = mpeg2par.GenerateStream(mpeg2par.StreamConfig{
			Width: 176, Height: 120, Pictures: 26, GOPSize: 13, BitRate: 2_000_000,
		})
	})
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	return stream
}

func TestPublicRoundTrip(t *testing.T) {
	s := testStream(t)
	frames, err := mpeg2par.DecodeAll(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 26 {
		t.Fatalf("%d frames", len(frames))
	}
	src := mpeg2par.NewSynth(176, 120)
	for i, f := range frames {
		if p := mpeg2par.PSNR(src.Frame(i), f); p < 25 {
			t.Errorf("frame %d PSNR %.1f", i, p)
		}
	}
}

func TestPublicParallelMatches(t *testing.T) {
	s := testStream(t)
	want, err := mpeg2par.DecodeAll(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mpeg2par.Mode{mpeg2par.ModeGOP, mpeg2par.ModeSliceSimple, mpeg2par.ModeSliceImproved} {
		var got []*mpeg2par.Frame
		st, err := mpeg2par.DecodeParallel(s.Data, mpeg2par.Options{
			Mode: mode, Workers: 3,
			Sink: func(f *mpeg2par.Frame) { got = append(got, f.Clone()) },
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if st.Pictures != len(want) || len(got) != len(want) {
			t.Fatalf("%v: %d/%d pictures", mode, st.Pictures, len(got))
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("%v: frame %d differs", mode, i)
			}
		}
	}
}

func TestPublicScan(t *testing.T) {
	s := testStream(t)
	m, err := mpeg2par.Scan(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GOPs) != 2 || m.TotalPictures != 26 {
		t.Fatalf("scan: %d GOPs, %d pictures", len(m.GOPs), m.TotalPictures)
	}
}

func TestPublicProfileAndSimulate(t *testing.T) {
	s := testStream(t)
	gops, err := mpeg2par.ProfileGOPs(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(gops) != 2 {
		t.Fatalf("%d GOP tasks", len(gops))
	}
	r1 := mpeg2par.SimulateGOP(gops, 1)
	r2 := mpeg2par.SimulateGOP(gops, 2)
	if r2.Makespan >= r1.Makespan {
		t.Fatalf("2 workers (%v) not faster than 1 (%v)", r2.Makespan, r1.Makespan)
	}

	pics, err := mpeg2par.ProfileSlices(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pics) != 26 {
		t.Fatalf("%d picture profiles", len(pics))
	}
	simple := mpeg2par.SimulateSlices(pics, 6, false)
	improved := mpeg2par.SimulateSlices(pics, 6, true)
	if improved.Makespan > simple.Makespan {
		t.Fatal("improved slower than simple")
	}
	plain8 := mpeg2par.SimulateSlices(pics, 8, true)
	dsm8 := mpeg2par.SimulateSlicesDSM(pics, 8, true, mpeg2par.DSMConfig{ClusterSize: 4, RemoteFactor: 0.3})
	if dsm8.Makespan <= plain8.Makespan {
		t.Fatal("remote-miss penalty should slow the 8-worker DSM run vs the SMP run")
	}
}

func TestPublicTraceAndCache(t *testing.T) {
	s := testStream(t)
	events, err := mpeg2par.TraceDecode(s.Data, mpeg2par.ModeGOP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	st, err := mpeg2par.SimulateCache(events, mpeg2par.CacheConfig{
		Size: 64 << 10, LineSize: 64, Assoc: 2, Procs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 || st.ReadMisses == 0 {
		t.Fatalf("implausible cache stats: %+v", st)
	}
	if _, err := mpeg2par.SimulateCache(events, mpeg2par.CacheConfig{Size: 100, LineSize: 3, Procs: 1}); err == nil {
		t.Fatal("bad cache config must fail")
	}
}

func TestPublicMemModel(t *testing.T) {
	m := mpeg2par.MemModel{
		Workers: 4, GOPs: 20, PicturesPerGOP: 13,
		FrameBytes: 352 * 240 * 3 / 2, BytesPerGOP: 300_000,
		ScanGOPsPerSec: 10, DecodeGOPsPerSec: 0.5, DisplayPicsPerSec: 30,
	}
	peak, err := m.Peak()
	if err != nil || peak <= 0 {
		t.Fatalf("peak %d err %v", peak, err)
	}
}

func TestEncodeFramesCustomSource(t *testing.T) {
	src := mpeg2par.NewSynth(96, 64)
	s, err := mpeg2par.EncodeFrames(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 4, GOPSize: 4,
	}, func(n int) *mpeg2par.Frame { return src.Frame(n) })
	if err != nil {
		t.Fatal(err)
	}
	frames, err := mpeg2par.DecodeAll(s.Data)
	if err != nil || len(frames) != 4 {
		t.Fatalf("%d frames, err %v", len(frames), err)
	}
}
