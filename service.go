package mpeg2par

import (
	"context"
	"time"

	"mpeg2par/internal/frame"
	"mpeg2par/internal/server"
)

// Service errors (returned by Server.Decode, wrapped with the stream
// id; test with errors.Is).
var (
	// ErrRejected: admission control turned the stream away — the wait
	// queue was full, or the overload ladder reached its top rung.
	ErrRejected = server.ErrRejected
	// ErrWedged: the watchdog failed a stream that stopped making
	// progress rather than let it hold resources forever.
	ErrWedged = server.ErrWedged
	// ErrServerClosed: the server was shut down.
	ErrServerClosed = server.ErrServerClosed
)

// ServerConfig tunes a decode Server. The zero value is usable: every
// field has a documented default.
type ServerConfig struct {
	// Workers is the shared worker-pool size all streams multiplex
	// onto. Default: the number of CPUs.
	Workers int
	// MaxStreams caps concurrently admitted streams (default
	// 8×Workers); QueueDepth bounds the admission wait queue (default
	// 2×Workers). Arrivals beyond both are rejected with ErrRejected.
	MaxStreams int
	QueueDepth int
	// TargetUtilization scales the admission capacity estimate: a
	// stream is admitted while the sum of per-stream demand estimates
	// stays under Workers×TargetUtilization. Default 1.0.
	TargetUtilization float64
	// Watchdog fails a stream that makes no progress for this long
	// (default 30s; negative disables).
	Watchdog time.Duration
	// DisableAutoDegrade freezes the graceful-degradation ladder;
	// Server.SetDegradation still moves it manually.
	DisableAutoDegrade bool
	// Dispatch selects the pool's task ordering: DispatchAuto (the
	// default) runs earliest-deadline-first while any admitted stream
	// has a frame deadline and weighted fair otherwise; DispatchFair
	// and DispatchEDF force one order. Under EDF, predicted slack from
	// the calibrated cost model also sheds already-doomed frames at
	// plan time and fans deadline-tight indexed frames out across idle
	// workers — both bit-exact for surviving frames.
	Dispatch DispatchPolicy
	// Trace, when non-nil, records the service's scheduling events:
	// task spans on worker lanes, and admission, shed, degradation,
	// pause and display events on one lane per stream.
	Trace *TraceRecorder
}

// ServiceMetrics is a point-in-time snapshot of a Server's gauges.
type ServiceMetrics = server.Metrics

// DispatchPolicy selects the shared pool's task ordering (see
// ServerConfig.Dispatch).
type DispatchPolicy = server.DispatchPolicy

// Dispatch policies.
const (
	// DispatchAuto: EDF while any admitted stream has a deadline,
	// weighted fair otherwise.
	DispatchAuto = server.DispatchAuto
	// DispatchFair: always weighted fair by priority.
	DispatchFair = server.DispatchFair
	// DispatchEDF: always earliest-effective-deadline-first (best-effort
	// streams age under a virtual deadline).
	DispatchEDF = server.DispatchEDF
)

// SlackHist is a fixed-bucket histogram of deadline slack; StreamStats
// carries one of predicted (feed-time) and one of actual (delivery)
// slack for every deadline-bearing stream.
type SlackHist = server.SlackHist

// StreamStats reports one stream served by a Server: the decode-side
// Stats (including Stats.Shed, the load-shedding accounting kept
// disjoint from Stats.Errors), admission queue wait, raw frame
// latencies with P50/P99 accessors, deadline misses, and pause count.
type StreamStats = server.StreamStats

// StreamOption configures one stream passed to Server.Decode.
type StreamOption func(*server.StreamConfig)

// WithStreamPriority sets the stream's priority class (default 0).
// Higher classes receive proportionally more pool service (weight
// priority+1) and are paused last under overload.
func WithStreamPriority(p int) StreamOption {
	return func(c *server.StreamConfig) { c.Priority = p }
}

// WithFrameDeadline sets the per-frame latency budget, measured from a
// frame being handed to the pool to its in-order delivery. Misses are
// counted in StreamStats and drive the overload ladder; frames are
// never dropped for missing a deadline (shedding is the ladder's job).
func WithFrameDeadline(d time.Duration) StreamOption {
	return func(c *server.StreamConfig) { c.Deadline = d }
}

// WithStreamMaxInFlight bounds the stream's scan-ahead: how many
// groups of pictures may be queued or decoding at once before its
// scanner blocks (default 4).
func WithStreamMaxInFlight(n int) StreamOption {
	return func(c *server.StreamConfig) { c.MaxInFlight = n }
}

// WithStreamResilience selects the stream's error policy (default
// FailFast). Under overload the ladder may temporarily floor it at
// ConcealPicture, accounted in Stats.Shed.DegradedPictures.
func WithStreamResilience(r Resilience) StreamOption {
	return func(c *server.StreamConfig) { c.Resilience = r }
}

// WithStreamSink delivers the stream's frames, in display order, to
// sink (frame valid only during the call).
func WithStreamSink(sink FrameSink) StreamOption {
	return func(c *server.StreamConfig) {
		if sink == nil {
			c.Sink = nil
			return
		}
		c.Sink = func(f *frame.Frame) { sink(f) }
	}
}

// WithPicRate paces the stream at about rate pictures per second (a
// real-time source) and lets admission charge its true predicted cost
// instead of a flat default. Zero (the default) feeds as fast as
// backpressure allows.
func WithPicRate(rate float64) StreamOption {
	return func(c *server.StreamConfig) { c.PicRate = rate }
}

// WithStreamChunkSize sets the stream scanner's read granularity
// (default 64 KiB).
func WithStreamChunkSize(n int) StreamOption {
	return func(c *server.StreamConfig) { c.ChunkSize = n }
}

// WithStreamIndex attaches the stream's intra-slice split index (built
// by BuildIndex, or NewIndex plus a deserialized payload). Combined with
// WithFrameDeadline, frames the slack predictor judges tight may fan
// their tall slices out across idle pool workers through the
// verify-or-fallback split chain — identical output, lower latency.
func WithStreamIndex(ix *Index) StreamOption {
	return func(c *server.StreamConfig) { c.Index = ix }
}

// Server is the multi-stream decode service: N concurrent streams
// multiplexed onto one shared worker pool, with admission control from
// the calibrated cost model, per-stream budgets (priority, frame
// deadlines, scan-ahead), and a graceful-degradation ladder that sheds
// B pictures, then reference pictures plus a resilience floor, then
// pauses the lowest-priority class with bounded backoff, and only then
// rejects new streams. See DESIGN.md, "Multi-stream service".
type Server struct {
	s *server.Server
}

// NewServer starts a decode service.
func NewServer(cfg ServerConfig) *Server {
	return &Server{s: server.NewServer(server.Config{
		Workers:            cfg.Workers,
		MaxStreams:         cfg.MaxStreams,
		QueueDepth:         cfg.QueueDepth,
		TargetUtilization:  cfg.TargetUtilization,
		Watchdog:           cfg.Watchdog,
		DisableAutoDegrade: cfg.DisableAutoDegrade,
		Dispatch:           cfg.Dispatch,
		Obs:                cfg.Trace,
	})}
}

// Decode runs one stream through the service and blocks until it
// completes, fails, or ctx is cancelled — typically called on the
// connection's goroutine, one call per concurrent viewer. The returned
// StreamStats is non-nil in every case; cancellation and teardown leak
// no goroutines and no pooled frames (StreamStats.Stats.LeakedFrameBytes
// is zero).
func (sv *Server) Decode(ctx context.Context, src Source, opts ...StreamOption) (*StreamStats, error) {
	var cfg server.StreamConfig
	for _, o := range opts {
		o(&cfg)
	}
	return sv.s.Decode(ctx, src.r, cfg)
}

// Close rejects new streams, aborts admitted ones (their Decode calls
// return promptly with teardown stats), and waits for the pool to
// exit. Idempotent.
func (sv *Server) Close() error { return sv.s.Close() }

// Metrics returns a snapshot of the service's gauges.
func (sv *Server) Metrics() ServiceMetrics { return sv.s.Metrics() }

// Rung returns the degradation ladder's current position, 0 (normal)
// to 3 (pause + reject).
func (sv *Server) Rung() int { return sv.s.Rung() }

// SetDegradation forces the ladder to a rung (0..3) — deterministic
// control for tests and experiments, usually with
// ServerConfig.DisableAutoDegrade.
func (sv *Server) SetDegradation(rung int) { sv.s.SetDegradation(rung) }
