package mpeg2par_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpeg2par"
)

// TestServiceAPI drives the public multi-stream service: concurrent
// streams with distinct priorities and budgets, per-stream stats with
// shed accounting, metrics, and idempotent shutdown.
func TestServiceAPI(t *testing.T) {
	s := testStream(t)
	srv := mpeg2par.NewServer(mpeg2par.ServerConfig{Workers: 3})
	defer srv.Close()

	const n = 4
	var wg sync.WaitGroup
	stats := make([]*mpeg2par.StreamStats, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var frames int
			stats[i], errs[i] = srv.Decode(context.Background(), mpeg2par.FromBytes(s.Data),
				mpeg2par.WithStreamPriority(i%2),
				mpeg2par.WithStreamResilience(mpeg2par.ConcealSlice),
				mpeg2par.WithFrameDeadline(5*time.Second),
				mpeg2par.WithStreamMaxInFlight(2),
				mpeg2par.WithStreamSink(func(f *mpeg2par.Frame) { frames++ }),
			)
			if errs[i] == nil && frames != len(s.Pictures) {
				errs[i] = fmt.Errorf("stream %d delivered %d of %d frames", i, frames, len(s.Pictures))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		st := stats[i].Stats
		if st.Displayed != len(s.Pictures) {
			t.Fatalf("stream %d displayed %d of %d", i, st.Displayed, len(s.Pictures))
		}
		if st.Shed.Any() || st.Errors.Any() {
			t.Fatalf("clean unloaded stream %d reported shed %+v errors %+v", i, st.Shed, st.Errors)
		}
		if st.LeakedFrameBytes != 0 {
			t.Fatalf("stream %d leaked %d frame bytes", i, st.LeakedFrameBytes)
		}
		if stats[i].DeadlineMisses != 0 {
			t.Fatalf("stream %d missed %d deadlines at 5s budget", i, stats[i].DeadlineMisses)
		}
		if stats[i].LatencyP50() <= 0 || stats[i].LatencyP99() < stats[i].LatencyP50() {
			t.Fatalf("stream %d latency quantiles p50=%v p99=%v", i, stats[i].LatencyP50(), stats[i].LatencyP99())
		}
	}
	m := srv.Metrics()
	if m.Admitted != n || m.Rejected != 0 || m.Wedged != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Decode(context.Background(), mpeg2par.FromBytes(s.Data)); !errors.Is(err, mpeg2par.ErrServerClosed) {
		t.Fatalf("post-close decode err=%v", err)
	}
}

// TestServiceForcedDegradation exercises the public degradation control:
// at rung 1 the service sheds B pictures, reported in Stats.Shed and
// never in Stats.Errors.
func TestServiceForcedDegradation(t *testing.T) {
	s := testStream(t)
	srv := mpeg2par.NewServer(mpeg2par.ServerConfig{Workers: 2, DisableAutoDegrade: true})
	defer srv.Close()
	srv.SetDegradation(1)
	if srv.Rung() != 1 {
		t.Fatalf("rung %d after SetDegradation(1)", srv.Rung())
	}
	ss, err := srv.Decode(context.Background(), mpeg2par.FromBytes(s.Data),
		mpeg2par.WithStreamResilience(mpeg2par.ConcealSlice))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Stats.Shed.BPictures == 0 {
		t.Fatalf("rung 1 shed nothing: %+v", ss.Stats.Shed)
	}
	if ss.Stats.Errors.Any() {
		t.Fatalf("shedding leaked into error stats: %+v", ss.Stats.Errors)
	}
	if ss.Stats.Displayed != len(s.Pictures) {
		t.Fatalf("displayed %d of %d — shed pictures must still display", ss.Stats.Displayed, len(s.Pictures))
	}
}
