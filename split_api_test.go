package mpeg2par_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"mpeg2par"
)

// tallStream generates a one-slice-per-picture stream: the geometry
// where slice-level parallelism is zero and intra-slice splitting is
// the only parallelism left.
func tallStream(t testing.TB) *mpeg2par.Stream {
	t.Helper()
	s, err := mpeg2par.GenerateStream(mpeg2par.StreamConfig{
		Width: 96, Height: 64, Pictures: 8, GOPSize: 4,
		RowsPerSlice: 4, // 64/16 rows -> one slice per picture
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

type frameCollector struct {
	mu     sync.Mutex
	frames []*mpeg2par.Frame
}

func (c *frameCollector) add(f *mpeg2par.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f.Clone())
	c.mu.Unlock()
}

// TestWithIndexStreaming pins the public surface end to end: BuildIndex
// over a Source, WithIndex through the streaming pipeline, split
// counters in Stats.Split, and bit-exact frames vs the sequential path.
func TestWithIndexStreaming(t *testing.T) {
	ctx := context.Background()
	s := tallStream(t)

	var ref frameCollector
	if _, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(s.Data),
		mpeg2par.WithMode(mpeg2par.ModeSequential), mpeg2par.WithWorkers(1),
		mpeg2par.WithFrameSink(ref.add)); err != nil {
		t.Fatal(err)
	}

	idx, err := mpeg2par.BuildIndex(ctx, mpeg2par.FromBytes(s.Data))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Slices() == 0 {
		t.Fatal("BuildIndex covered no slices on a tall-slice stream")
	}

	// Binary round trip through the public aliases.
	raw, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded := mpeg2par.NewIndex()
	if err := loaded.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if loaded.Slices() != idx.Slices() || loaded.Points() != idx.Points() {
		t.Fatalf("round trip lost entries: %d/%d vs %d/%d",
			loaded.Slices(), loaded.Points(), idx.Slices(), idx.Points())
	}

	var got frameCollector
	st, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(s.Data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(3),
		mpeg2par.WithIndex(loaded),
		mpeg2par.WithSplitParts(3),
		mpeg2par.WithFrameSink(got.add))
	if err != nil {
		t.Fatal(err)
	}
	if st.Split.SlicesSplit == 0 {
		t.Fatalf("streaming decode split nothing: %+v", st.Split)
	}
	if st.Split.VerifyMisses != 0 {
		t.Fatalf("exact index missed verification: %+v", st.Split)
	}
	if len(got.frames) != len(ref.frames) {
		t.Fatalf("%d frames, want %d", len(got.frames), len(ref.frames))
	}
	for i := range ref.frames {
		if !ref.frames[i].Equal(got.frames[i]) {
			t.Fatalf("frame %d differs from sequential decode", i)
		}
	}
}

// TestWithSpeculativeSplitStreaming: speculation through the public
// streaming pipeline never changes the output.
func TestWithSpeculativeSplitStreaming(t *testing.T) {
	ctx := context.Background()
	s := tallStream(t)
	var ref frameCollector
	if _, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(s.Data),
		mpeg2par.WithMode(mpeg2par.ModeSequential), mpeg2par.WithWorkers(1),
		mpeg2par.WithFrameSink(ref.add)); err != nil {
		t.Fatal(err)
	}
	var got frameCollector
	st, err := mpeg2par.Decode(ctx, mpeg2par.FromBytes(s.Data),
		mpeg2par.WithMode(mpeg2par.ModeSliceImproved),
		mpeg2par.WithWorkers(3),
		mpeg2par.WithSpeculativeSplit(true),
		mpeg2par.WithFrameSink(got.add))
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors.Any() {
		t.Fatalf("clean stream reported damage under speculation: %+v", st.Errors)
	}
	if len(got.frames) != len(ref.frames) {
		t.Fatalf("%d frames, want %d", len(got.frames), len(ref.frames))
	}
	for i := range ref.frames {
		if !ref.frames[i].Equal(got.frames[i]) {
			t.Fatalf("frame %d differs under speculation", i)
		}
	}
}

// TestErrBadOptionPublic: the sentinel is reachable and matchable from
// the public API.
func TestErrBadOptionPublic(t *testing.T) {
	s := tallStream(t)
	_, err := mpeg2par.DecodeParallel(s.Data, mpeg2par.Options{Mode: mpeg2par.ModeSliceImproved})
	if !errors.Is(err, mpeg2par.ErrBadOption) {
		t.Fatalf("zero workers: err %v, want ErrBadOption", err)
	}
}
